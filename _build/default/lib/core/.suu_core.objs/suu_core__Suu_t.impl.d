lib/core/suu_t.ml: Array Instance List Policy Suu_c Suu_dag
