lib/core/rounding.ml: Array Assignment Hashtbl Instance List Mathx Printf Suu_flow
