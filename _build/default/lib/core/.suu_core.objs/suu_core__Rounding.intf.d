lib/core/rounding.mli: Assignment Instance
