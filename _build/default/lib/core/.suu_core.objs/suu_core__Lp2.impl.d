lib/core/lp2.ml: Array Float Fun Hashtbl Instance List Mathx Rounding Suu_lp
