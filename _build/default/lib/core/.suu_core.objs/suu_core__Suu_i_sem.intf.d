lib/core/suu_i_sem.mli: Instance Policy Solver_choice
