lib/core/exact_dp.ml: Array Float Hashtbl Instance List Policy Printf Suu_dag
