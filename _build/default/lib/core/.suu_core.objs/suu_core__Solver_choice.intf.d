lib/core/solver_choice.mli:
