lib/core/policy.mli: Suu_prng
