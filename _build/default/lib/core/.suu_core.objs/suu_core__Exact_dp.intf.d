lib/core/exact_dp.mli: Instance Policy
