lib/core/lower_bound.mli: Instance Solver_choice
