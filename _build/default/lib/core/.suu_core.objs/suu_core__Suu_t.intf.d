lib/core/suu_t.mli: Instance Policy Solver_choice
