lib/core/baselines.mli: Assignment Instance Policy
