lib/core/auto.mli: Instance Policy Solver_choice
