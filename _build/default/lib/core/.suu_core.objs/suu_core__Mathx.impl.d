lib/core/mathx.ml: Float
