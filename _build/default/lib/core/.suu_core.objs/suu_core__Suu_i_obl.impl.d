lib/core/suu_i_obl.ml: Array Instance Lp1 Oblivious Policy Rounding
