lib/core/lp1.ml: Array Float Hashtbl Instance Solver_choice Suu_lp
