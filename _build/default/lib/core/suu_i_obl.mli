(** SUU-I-OBL: the oblivious O(log n)-approximation for independent jobs
    (paper Section 3, Theorem 3).

    Solve LP1(J, 1/2), round it (Lemma 2) into an assignment giving every
    job log mass 1/2 — i.e. failure probability at most 1/sqrt 2 per pass —
    serialize it into a finite oblivious schedule of length O(E[T_OPT])
    (Lemma 1), and repeat that schedule until every job completes.  This
    is also our stand-in for the previously-best Lin–Rajaraman O(log n)
    algorithm in the Table 1 experiments. *)

val plan : ?solver:Solver_choice.t -> Instance.t -> Oblivious.t
(** [plan inst] is the single repeated oblivious schedule (exposed for
    tests and diagnostics). *)

val policy : ?solver:Solver_choice.t -> Instance.t -> Policy.t
(** [policy inst] repeats {!plan} forever (the engine stops it when all
    jobs are done).  The LP is solved once, at policy-creation time —
    the schedule is fully oblivious. *)
