(** Small numeric helpers shared across the SUU algorithms. *)

val log2 : float -> float
(** Base-2 logarithm (the paper's [log] is always base 2). *)

val ceil_log2 : int -> int
(** [ceil_log2 x] is [ceil (log2 x)] for [x >= 1]; raises
    [Invalid_argument] otherwise. *)

val rounds_k : n:int -> m:int -> int
(** [rounds_k ~n ~m] is the paper's [K = ceil(log log min(m, n)) + 3]
    round count for SUU-I-SEM, clamped to at least 4 so degenerate
    instances still run their tail phase. *)

val target_for_round : int -> float
(** [target_for_round k] is the round-[k] log-mass target
    [L_k = 2^(k-2)] (so [L_1 = 1/2]), for [k >= 1]. *)

val floor_pos : float -> int
(** [floor_pos x] is [floor (x + 1e-9)] as an int, clamped to be
    nonnegative — the ⌊·⌋ of Lemma 2 guarded against roundoff. *)

val ceil_pos : float -> int
(** [ceil_pos x] is [ceil (x - 1e-9)] as an int, clamped to be
    nonnegative — the ⌈·⌉ of Lemma 2 guarded against roundoff. *)
