let plan ?solver inst =
  let jobs = Array.init (Instance.n inst) (fun j -> j) in
  let target = 0.5 in
  let { Lp1.x; value } = Lp1.solve ?solver inst ~jobs ~target in
  let rounded =
    Rounding.round inst ~jobs ~target ~frac:x ~frac_value:value
  in
  Oblivious.of_assignment rounded

let policy ?solver inst =
  let schedule = plan ?solver inst in
  let h = Oblivious.horizon schedule in
  Policy.make ~name:"suu-i-obl" ~fresh:(fun _rng ->
      fun ~time ~remaining:_ ~eligible:_ ->
        Oblivious.assignment_at schedule (time mod h))
