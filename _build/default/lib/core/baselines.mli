(** Baseline schedules the experiments compare against.

    None of these carries the paper's guarantees; they calibrate how much
    of SUU-I-SEM's and SUU-C's performance comes from the LP machinery
    versus generic replication. *)

val greedy_completion : Instance.t -> Policy.t
(** Per step, machines (in index order) each pick the eligible remaining
    job whose expected completion gain [s_j * (1 - q_ij)] is largest,
    where [s_j] is the job's survival probability under the machines
    already committed this step — the natural greedy maximizing the
    expected number of completions per step, in the spirit of
    Lin–Rajaraman's greedy for independent jobs. *)

val round_robin : Instance.t -> Policy.t
(** Per step, machine [i] takes the [(t + i) mod e]-th eligible job —
    uniform replication with no use of the [q_ij] at all. *)

val serial : Instance.t -> Policy.t
(** All machines gang up on the lowest-index eligible remaining job — the
    trivial O(n)-approximation the paper falls back on in its tail
    phases. *)

val greedy_oblivious : ?target:float -> Instance.t -> Policy.t
(** An LP-free analogue of SUU-I-OBL in the spirit of Lin–Rajaraman's
    greedy: construct a finite oblivious assignment giving every job
    clipped log mass [target] (default 1/2) by doubling a per-machine
    step budget and greedily feeding each step of the strongest available
    machine to the neediest job; repeat the schedule until all jobs
    complete.  Isolates how much of SUU-I-OBL's behaviour comes from the
    LP versus from plain repetition (bench ablation in E1). *)

val greedy_oblivious_assignment : ?target:float -> Instance.t -> Assignment.t
(** The assignment {!greedy_oblivious} repeats (exposed for the A1-style
    load comparison against the LP + Lemma-2 pipeline). *)

(** Note on the paper's concluding open question ("could a greedy
    heuristic achieve the same bounds?"): {!greedy_completion} already
    maximizes the per-step decrease of the SUU* potential
    [sum_remaining 2^(-mass_j)] — by memorylessness of geometric
    completion, weighting by accrued mass changes nothing.  Ablation A3
    in the bench harness answers the question empirically: greedy matches
    SUU-I-SEM on random hazards but starves rare-machine jobs on an
    adversarial family, where its ratio grows linearly while SEM's stays
    bounded. *)
