(** SUU-I-SEM: the semioblivious O(log log min(m, n))-approximation for
    independent jobs (paper Section 3, Theorem 4).

    The schedule runs [K = ceil(log log min(m, n)) + 3] rounds.  Round 1
    executes the rounded LP1(J, 1/2) schedule; round [k] re-solves (LP1)
    on the surviving jobs [J_k] with the doubled target [L_k = 2^(k-2)]
    and executes its rounded schedule once.  A job surviving round [k-1]
    must have threshold [-log2 r_j > 2^(k-3)], which is why each round's
    cost is within a constant of the offline optimum (the competitive
    argument of Theorem 4).  If jobs remain after round [K]: with
    [n <= m] they are run one at a time on all machines; with [m < n]
    the round-[K] schedule is repeated until completion. *)

val rounds : Instance.t -> int
(** [rounds inst] is [K] for this instance. *)

val policy :
  ?solver:Solver_choice.t -> ?jobs:int array -> Instance.t -> Policy.t
(** [policy inst] is the SUU-I-SEM schedule.  [jobs] restricts the policy
    to a subset (used by SUU-C's long-job phases; default all jobs) — the
    stepper then ignores jobs outside the subset entirely, and the round
    count uses the subset size. *)
