type t = { xm : int array array; nm : int; nn : int }

let make x =
  let nm = Array.length x in
  if nm = 0 then invalid_arg "Assignment.make: no machines";
  let nn = Array.length x.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> nn then invalid_arg "Assignment.make: ragged";
      Array.iter
        (fun v -> if v < 0 then invalid_arg "Assignment.make: negative")
        row)
    x;
  { xm = Array.map Array.copy x; nm; nn }

let zero ~m ~n =
  if m <= 0 || n <= 0 then invalid_arg "Assignment.zero: empty";
  { xm = Array.make_matrix m n 0; nm = m; nn = n }

let m t = t.nm
let n t = t.nn
let get t i j = t.xm.(i).(j)

let set t i j v =
  if v < 0 then invalid_arg "Assignment.set: negative";
  t.xm.(i).(j) <- v

let machine_load t i = Array.fold_left ( + ) 0 t.xm.(i)

let load t =
  let best = ref 0 in
  for i = 0 to t.nm - 1 do
    let l = machine_load t i in
    if l > !best then best := l
  done;
  !best

let job_length t j =
  let best = ref 0 in
  for i = 0 to t.nm - 1 do
    if t.xm.(i).(j) > !best then best := t.xm.(i).(j)
  done;
  !best

let job_steps t j =
  let acc = ref 0 in
  for i = 0 to t.nm - 1 do
    acc := !acc + t.xm.(i).(j)
  done;
  !acc

let log_mass inst t j =
  let acc = ref 0.0 in
  for i = 0 to t.nm - 1 do
    if t.xm.(i).(j) > 0 then
      acc :=
        !acc +. (float_of_int t.xm.(i).(j) *. Instance.log_failure inst i j)
  done;
  !acc

let clipped_log_mass inst ~target t j =
  let acc = ref 0.0 in
  for i = 0 to t.nm - 1 do
    if t.xm.(i).(j) > 0 then
      acc :=
        !acc
        +. float_of_int t.xm.(i).(j)
           *. Instance.clipped_log_failure inst ~target i j
  done;
  !acc

let machines_of_job t j =
  let acc = ref [] in
  for i = t.nm - 1 downto 0 do
    if t.xm.(i).(j) > 0 then acc := (i, t.xm.(i).(j)) :: !acc
  done;
  !acc

let total_steps t =
  let acc = ref 0 in
  for i = 0 to t.nm - 1 do
    acc := !acc + machine_load t i
  done;
  !acc
