(** Provable lower bounds on [E[T_OPT]].

    [E[T_OPT]] is not computable for interesting sizes, so the experiments
    normalize measured makespans by certified lower bounds; a measured
    ratio then upper-bounds the true approximation ratio, and its growth
    in [n] and [m] is exactly the quantity Table 1 talks about. *)

val lp1_half : ?solver:Solver_choice.t -> Instance.t -> float
(** [lp1_half inst] is [t_LP1(J, 1/2) / 2 <= E[T_OPT]]: the paper's
    Lemma 1 shows [E[T_OPT] >= LP1(J, 1/2) / 2] — valid with or without
    precedence constraints, since (LP1) ignores ordering.  When solved
    with an approximate backend the value is further divided by the
    backend's guarantee so it remains a true lower bound. *)

val critical_path : Instance.t -> float
(** [critical_path inst] is the heaviest directed path in the dag under
    weights [1 / (1 - prod_i q_ij)]: jobs on a path run sequentially, and
    even with every machine ganged on job [j] its per-step failure
    probability is [prod_i q_ij], so it needs
    [E[ceil(w_j / sum_i l_ij)] = 1 / (1 - prod_i q_ij)] expected steps. *)

val work : Instance.t -> float
(** [work inst] is [sum_j max(1, E[w] / lbest_j) / m]: every job [j] costs
    at least [max(1, w_j / lbest_j)] machine-steps, [E[w_j] = 1 / ln 2],
    and [m] machine-steps fit in a unit of time. *)

val combined : ?solver:Solver_choice.t -> Instance.t -> float
(** The max of the three bounds (at least 1). *)
