let log2 x = log x /. log 2.0

let ceil_log2 x =
  if x < 1 then invalid_arg "Mathx.ceil_log2: x must be >= 1";
  let rec go acc pow = if pow >= x then acc else go (acc + 1) (2 * pow) in
  go 0 1

let rounds_k ~n ~m =
  let s = min n m in
  let loglog = if s < 2 then 0.0 else log2 (Float.max 1.0 (log2 (float_of_int s))) in
  max 4 (int_of_float (ceil loglog) + 3)

let target_for_round k =
  if k < 1 then invalid_arg "Mathx.target_for_round: k must be >= 1";
  Float.pow 2.0 (float_of_int (k - 2))

let floor_pos x = max 0 (int_of_float (floor (x +. 1e-9)))
let ceil_pos x = max 0 (int_of_float (ceil (x -. 1e-9)))
