type t = {
  iname : string;
  njobs : int;
  nmachines : int;
  qm : float array array; (* m x n *)
  ell : float array array; (* m x n; -log2 q, possibly infinite *)
  best : int array; (* per job, machine with minimal q *)
  g : Suu_dag.Dag.t;
}

let make ?(name = "suu") ~dag q =
  let m = Array.length q in
  if m = 0 then invalid_arg "Instance.make: no machines";
  let n = Array.length q.(0) in
  if n = 0 then invalid_arg "Instance.make: no jobs";
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Instance.make: ragged matrix")
    q;
  if Suu_dag.Dag.size dag <> n then
    invalid_arg "Instance.make: dag size mismatch";
  let qm = Array.map Array.copy q in
  let ell = Array.make_matrix m n 0.0 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let v = qm.(i).(j) in
      if not (v >= 0.0 && v <= 1.0) then
        invalid_arg "Instance.make: q out of [0,1]";
      ell.(i).(j) <- (if v = 0.0 then infinity else -.(log v /. log 2.0))
    done
  done;
  let best = Array.make n 0 in
  for j = 0 to n - 1 do
    let b = ref 0 in
    for i = 1 to m - 1 do
      if qm.(i).(j) < qm.(!b).(j) then b := i
    done;
    if qm.(!b).(j) >= 1.0 then
      invalid_arg "Instance.make: a job fails on every machine";
    best.(j) <- !b
  done;
  { iname = name; njobs = n; nmachines = m; qm; ell; best; g = dag }

let name t = t.iname
let n t = t.njobs
let m t = t.nmachines
let dag t = t.g
let q t i j = t.qm.(i).(j)
let log_failure t i j = t.ell.(i).(j)

let clipped_log_failure t ~target i j = Float.min t.ell.(i).(j) target

let best_machine t j = t.best.(j)

let jobs t = List.init t.njobs (fun j -> j)
