(** One-call frontend: classify the precedence dag and dispatch the
    matching algorithm from the paper. *)

val policy : ?solver:Solver_choice.t -> Instance.t -> Policy.t
(** [policy inst] returns SUU-I-SEM for independent jobs, SUU-C for
    disjoint chains, SUU-T for directed forests, and the greedy baseline
    (with a warning in the policy name: ["greedy(general-dag)"]) for
    general dags, for which the paper has no approximation algorithm. *)

val describe : Instance.t -> string
(** Human-readable classification of the instance. *)
