type t = { plan : int array array (* horizon x m *); nm : int }

let of_assignment a =
  let m = Assignment.m a in
  let n = Assignment.n a in
  let horizon = max 1 (Assignment.load a) in
  let plan = Array.make_matrix horizon m (-1) in
  for i = 0 to m - 1 do
    let k = ref 0 in
    for j = 0 to n - 1 do
      for _ = 1 to Assignment.get a i j do
        plan.(!k).(i) <- j;
        incr k
      done
    done
  done;
  { plan; nm = m }

let horizon t = Array.length t.plan
let machines t = t.nm

let assignment_at t k =
  if k < 0 || k >= Array.length t.plan then
    invalid_arg "Oblivious.assignment_at: step out of range";
  t.plan.(k)
