(** ASCII tables for experiment output.

    The benchmark harness prints each reproduced paper table as a plain
    monospaced table; this module renders headers, alignment and rules. *)

type t
(** A table under construction: a header row plus data rows. *)

val create : header:string list -> t
(** [create ~header] starts a table whose columns are labelled by
    [header]. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a data row.  Rows shorter than the header are
    padded with empty cells; longer rows raise [Invalid_argument]. *)

val add_float_row : t -> string -> float list -> unit
(** [add_float_row t label xs] appends a row with first cell [label] and the
    remaining cells formatted with {!fmt_g}. *)

val render : t -> string
(** [render t] lays the table out with one space of padding, columns sized
    to their widest cell, a rule under the header, and the first column
    left-aligned (all others right-aligned). *)

val print : t -> unit
(** [print t] writes [render t] followed by a newline to standard output. *)

val fmt_g : float -> string
(** [fmt_g x] formats [x] compactly: ["-"] for NaN, four significant digits
    otherwise. *)
