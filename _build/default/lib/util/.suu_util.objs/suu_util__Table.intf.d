lib/util/table.mli:
