type t = {
  header : string array;
  mutable rows : string array list; (* reversed *)
}

let create ~header = { header = Array.of_list header; rows = [] }

let fmt_g x =
  if Float.is_nan x then "-"
  else if Float.is_integer x && Float.abs x < 1e9 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.4g" x

let add_row t cells =
  let k = Array.length t.header in
  let cells = Array.of_list cells in
  let n = Array.length cells in
  if n > k then invalid_arg "Table.add_row: more cells than columns";
  let row = Array.make k "" in
  Array.blit cells 0 row 0 n;
  t.rows <- row :: t.rows

let add_float_row t label xs = add_row t (label :: List.map fmt_g xs)

let render t =
  let rows = List.rev t.rows in
  let k = Array.length t.header in
  let width = Array.make k 0 in
  let measure row =
    Array.iteri (fun i c -> width.(i) <- max width.(i) (String.length c)) row
  in
  measure t.header;
  List.iter measure rows;
  let buf = Buffer.create 256 in
  let pad i c =
    let w = width.(i) in
    let s = String.length c in
    if i = 0 then c ^ String.make (w - s) ' '
    else String.make (w - s) ' ' ^ c
  in
  let emit row =
    Array.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i c))
      row;
    Buffer.add_char buf '\n'
  in
  emit t.header;
  Array.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (String.make w '-'))
    width;
  Buffer.add_char buf '\n';
  List.iter emit rows;
  Buffer.contents buf

let print t = print_string (render t)
