lib/workload/workload.mli: Suu_core Suu_prng
