lib/workload/workload.ml: Array Float List Printf Suu_core Suu_dag Suu_prng
