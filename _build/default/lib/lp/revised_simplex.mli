(** Revised simplex with an explicit basis inverse.

    A second, structurally independent implementation of two-phase
    simplex: where {!Simplex} carries the full tableau through every
    pivot, this solver maintains only the basis inverse [B⁻¹] (updated by
    elementary eta transformations and periodically refactorized by
    Gauss–Jordan for numerical hygiene) and prices columns against the
    original constraint matrix.

    Since the paper's guarantees all flow through LP solutions
    (Lemmas 1, 2, 5, 6; the LL LP; LST), having two independent solvers
    lets the test suite differentially validate the critical substrate:
    both must agree on optimal values, feasibility and unboundedness for
    every randomized instance. *)

val solve : ?max_iters:int -> Problem.t -> Simplex.result
(** [solve p] optimizes [p] with the same contract as
    {!Simplex.solve} (identical result type; optimal values agree to
    numerical tolerance, though the optimal vertex may differ when the
    optimum is degenerate). *)

val solve_exn : ?max_iters:int -> Problem.t -> float * float array
(** Like {!Simplex.solve_exn}. *)
