type result =
  | Optimal of { objective : float; x : float array }
  | Infeasible
  | Unbounded
  | Iteration_limit

type detailed = { objective : float; x : float array; duals : float array }

let eps = 1e-9
let feas_tol = 1e-7

type tableau = {
  rows : int;
  cols : int; (* number of variable columns; rhs lives at index [cols] *)
  a : float array array; (* rows x (cols + 1) *)
  basis : int array; (* basic column of each row *)
  z1 : float array; (* phase-1 reduced costs, length cols + 1 *)
  z2 : float array; (* phase-2 reduced costs, length cols + 1 *)
  nstruct : int; (* structural variables occupy columns [0, nstruct) *)
  first_artificial : int; (* artificial columns occupy [first_artificial, cols) *)
  dual_of_row : (int * float) array;
  (* per user constraint: the standardized row's slack/surplus/artificial
     column and the sign such that the user-facing dual is
     sign * z2.(column) at optimality *)
}

(* Lay out columns as [structural | slack/surplus | artificial] and install
   the initial basis: slack for <= rows, artificial for >= and = rows. *)
let build problem =
  let nstruct = Problem.num_vars problem in
  let nrows = Problem.num_constraints problem in
  (* Count extra columns. *)
  let n_slack = ref 0 and n_art = ref 0 in
  Problem.iter_constraints problem (fun _ sense rhs ->
      let sense = if rhs < 0.0 then
          (match sense with Problem.Le -> Problem.Ge
                          | Problem.Ge -> Problem.Le
                          | Problem.Eq -> Problem.Eq)
        else sense
      in
      match sense with
      | Problem.Le -> incr n_slack
      | Problem.Ge -> incr n_slack; incr n_art
      | Problem.Eq -> incr n_art);
  let first_artificial = nstruct + !n_slack in
  let cols = first_artificial + !n_art in
  let a = Array.init nrows (fun _ -> Array.make (cols + 1) 0.0) in
  let basis = Array.make nrows (-1) in
  let z1 = Array.make (cols + 1) 0.0 in
  let z2 = Array.make (cols + 1) 0.0 in
  let obj = Problem.objective problem in
  Array.blit obj 0 z2 0 nstruct;
  let slack_next = ref nstruct and art_next = ref first_artificial in
  let dual_of_row = Array.make nrows (0, 0.0) in
  let r = ref 0 in
  Problem.iter_constraints problem (fun terms sense rhs ->
      let row = a.(!r) in
      let flip = rhs < 0.0 in
      let put (v, c) = row.(v) <- row.(v) +. (if flip then -.c else c) in
      Array.iter put terms;
      row.(cols) <- (if flip then -.rhs else rhs);
      let sense =
        if flip then
          match sense with
          | Problem.Le -> Problem.Ge
          | Problem.Ge -> Problem.Le
          | Problem.Eq -> Problem.Eq
        else sense
      in
      (* Record where this row's dual can be read off after phase 2:
         the reduced cost of a slack (+1) column is -y, of a surplus
         (-1) column +y, of a zero-cost artificial -y; a flipped row
         negates the user-facing dual again. *)
      let fsign = if flip then -1.0 else 1.0 in
      (match sense with
      | Problem.Le ->
          let s = !slack_next in
          incr slack_next;
          row.(s) <- 1.0;
          basis.(!r) <- s;
          dual_of_row.(!r) <- (s, -.fsign)
      | Problem.Ge ->
          let s = !slack_next in
          incr slack_next;
          row.(s) <- -1.0;
          let art = !art_next in
          incr art_next;
          row.(art) <- 1.0;
          basis.(!r) <- art;
          dual_of_row.(!r) <- (s, fsign)
      | Problem.Eq ->
          let art = !art_next in
          incr art_next;
          row.(art) <- 1.0;
          basis.(!r) <- art;
          dual_of_row.(!r) <- (art, -.fsign));
      incr r);
  (* Phase-1 reduced costs: cost 1 on every artificial column, then
     price out the initial (artificial) basics by subtracting their
     rows. *)
  for j = first_artificial to cols - 1 do
    z1.(j) <- 1.0
  done;
  for r = 0 to nrows - 1 do
    if basis.(r) >= first_artificial then begin
      let row = a.(r) in
      for j = 0 to cols do
        z1.(j) <- z1.(j) -. row.(j)
      done
    end
  done;
  (* The z rows store reduced costs in [0, cols) and minus the current
     objective value at index [cols]. *)
  { rows = nrows; cols; a; basis; z1; z2; nstruct; first_artificial;
    dual_of_row }

let pivot t ~row ~col =
  let arow = t.a.(row) in
  let p = arow.(col) in
  let inv = 1.0 /. p in
  for j = 0 to t.cols do
    arow.(j) <- arow.(j) *. inv
  done;
  arow.(col) <- 1.0;
  let eliminate target =
    let f = target.(col) in
    if Float.abs f > 0.0 then begin
      for j = 0 to t.cols do
        target.(j) <- target.(j) -. (f *. arow.(j))
      done;
      target.(col) <- 0.0
    end
  in
  for r = 0 to t.rows - 1 do
    if r <> row then eliminate t.a.(r)
  done;
  eliminate t.z1;
  eliminate t.z2;
  t.basis.(row) <- col

(* Choose the entering column: Dantzig (most negative reduced cost) unless
   [bland], then the lowest eligible index.  [limit] excludes artificial
   columns during phase 2. *)
let entering z ~bland ~limit =
  if bland then begin
    let found = ref (-1) in
    (try
       for j = 0 to limit - 1 do
         if z.(j) < -.eps then begin
           found := j;
           raise Exit
         end
       done
     with Exit -> ());
    !found
  end
  else begin
    let best = ref (-1) and best_val = ref (-.eps) in
    for j = 0 to limit - 1 do
      if z.(j) < !best_val then begin
        best_val := z.(j);
        best := j
      end
    done;
    !best
  end

(* Ratio test; ties broken toward the smallest basic column to limit
   cycling.  Returns -1 when the column is unbounded. *)
let leaving t col =
  let best = ref (-1) and best_ratio = ref infinity in
  for r = 0 to t.rows - 1 do
    let arc = t.a.(r).(col) in
    if arc > eps then begin
      let ratio = t.a.(r).(t.cols) /. arc in
      if
        ratio < !best_ratio -. eps
        || (ratio < !best_ratio +. eps
            && !best >= 0
            && t.basis.(r) < t.basis.(!best))
      then begin
        best_ratio := ratio;
        best := r
      end
    end
  done;
  !best

type phase_outcome = Done | Unbounded_col | Out_of_iters

let run_phase t z ~limit ~iters_left ~bland_after =
  let iters = ref 0 in
  let rec loop () =
    if !iters >= iters_left then Out_of_iters
    else begin
      let bland = !iters > bland_after in
      let col = entering z ~bland ~limit in
      if col < 0 then Done
      else
        let row = leaving t col in
        if row < 0 then Unbounded_col
        else begin
          pivot t ~row ~col;
          incr iters;
          loop ()
        end
    end
  in
  let outcome = loop () in
  (outcome, !iters)

(* After phase 1, pivot zero-level artificial basics out on any usable
   non-artificial column; rows that admit none are redundant and keep their
   artificial basic at level zero (artificials never re-enter because
   phase 2 prices only columns below [first_artificial]). *)
let expel_artificials t =
  for r = 0 to t.rows - 1 do
    if t.basis.(r) >= t.first_artificial then begin
      let row = t.a.(r) in
      let col = ref (-1) in
      (try
         for j = 0 to t.first_artificial - 1 do
           if Float.abs row.(j) > 1e-7 then begin
             col := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !col >= 0 then pivot t ~row:r ~col:!col
    end
  done

let solve_internal ?max_iters problem =
  let t = build problem in
  let default_budget = max 100_000 (50 * (t.rows + t.cols)) in
  let budget = match max_iters with Some b -> b | None -> default_budget in
  let bland_after = 10 * (t.rows + t.cols) in
  let phase1_needed = t.first_artificial < t.cols in
  let after_phase1 =
    if not phase1_needed then Some budget
    else begin
      match run_phase t t.z1 ~limit:t.cols ~iters_left:budget ~bland_after with
      | Done, used ->
          let phase1_obj = -.t.z1.(t.cols) in
          if phase1_obj > feas_tol then None
          else begin
            expel_artificials t;
            Some (budget - used)
          end
      | Unbounded_col, _ ->
          (* Phase 1 minimizes a sum of nonnegative variables: it cannot be
             unbounded on exact arithmetic; treat as numerical failure. *)
          None
      | Out_of_iters, _ -> Some 0
    end
  in
  match after_phase1 with
  | None -> (Infeasible, None)
  | Some 0 -> (Iteration_limit, None)
  | Some left -> (
      match
        run_phase t t.z2 ~limit:t.first_artificial ~iters_left:left
          ~bland_after
      with
      | Done, _ ->
          let x = Array.make t.nstruct 0.0 in
          for r = 0 to t.rows - 1 do
            let b = t.basis.(r) in
            if b < t.nstruct then x.(b) <- t.a.(r).(t.cols)
          done;
          (* Clamp tiny negatives produced by roundoff. *)
          for v = 0 to t.nstruct - 1 do
            if x.(v) < 0.0 && x.(v) > -.feas_tol then x.(v) <- 0.0
          done;
          let duals =
            Array.map
              (fun (col, sign) -> sign *. t.z2.(col))
              t.dual_of_row
          in
          (Optimal { objective = Problem.objective_value problem x; x },
           Some duals)
      | Unbounded_col, _ -> (Unbounded, None)
      | Out_of_iters, _ -> (Iteration_limit, None))

let solve ?max_iters problem = fst (solve_internal ?max_iters problem)

let solve_detailed ?max_iters problem =
  match solve_internal ?max_iters problem with
  | Optimal { objective; x }, Some duals -> Some { objective; x; duals }
  | _ -> None

let solve_exn ?max_iters problem =
  match solve ?max_iters problem with
  | Optimal { objective; x } -> (objective, x)
  | Infeasible -> failwith (Problem.name problem ^ ": infeasible")
  | Unbounded -> failwith (Problem.name problem ^ ": unbounded")
  | Iteration_limit -> failwith (Problem.name problem ^ ": iteration limit")
