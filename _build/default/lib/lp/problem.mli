(** Linear-program builder.

    A problem is a minimization over variables [x >= 0] subject to sparse
    linear constraints.  The SUU relaxations (LP1), (LP2) and the
    Lawler–Labetoulle LP are all of this form.  Maximization can be
    expressed by negating the objective. *)

type t
(** A mutable problem under construction. *)

type var = int
(** Variable handle: the index of the variable, also its position in
    solution vectors. *)

type sense = Le | Ge | Eq
(** Constraint sense: [row <= b], [row >= b], [row = b]. *)

val create : ?name:string -> unit -> t
(** [create ()] is an empty minimization problem. *)

val name : t -> string

val add_var : ?name:string -> ?obj:float -> t -> var
(** [add_var t] adds a variable with lower bound 0 and objective
    coefficient [obj] (default 0). *)

val add_vars : ?obj:float -> t -> int -> var array
(** [add_vars t k] adds [k] variables at once, returning their handles. *)

val set_obj : t -> var -> float -> unit
(** [set_obj t v c] sets the objective coefficient of [v] to [c]. *)

val add_constraint :
  ?name:string -> t -> (var * float) list -> sense -> float -> unit
(** [add_constraint t terms sense b] adds [sum terms sense b].  Terms may
    repeat a variable; coefficients are summed.  Raises [Invalid_argument]
    on an out-of-range variable. *)

val num_vars : t -> int
val num_constraints : t -> int

val objective_value : t -> float array -> float
(** [objective_value t x] evaluates the objective at [x]. *)

val constraint_violation : t -> float array -> float
(** [constraint_violation t x] is the largest violation of any constraint
    at [x] (0 when [x] is feasible), including negativity of [x]. *)

val iter_constraints :
  t -> ((var * float) array -> sense -> float -> unit) -> unit
(** [iter_constraints t f] applies [f] to each constraint in insertion
    order. *)

val objective : t -> float array
(** [objective t] is a copy of the dense objective vector. *)
