lib/lp/mwu.mli:
