lib/lp/mwu.ml: Array Float
