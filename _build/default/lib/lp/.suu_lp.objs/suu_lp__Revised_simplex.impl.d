lib/lp/revised_simplex.ml: Array Float Problem Simplex
