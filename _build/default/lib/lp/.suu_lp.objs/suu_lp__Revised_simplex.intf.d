lib/lp/revised_simplex.mli: Problem Simplex
