lib/lp/problem.mli:
