let eps = 1e-9
let feas_tol = 1e-7

type standard = {
  rows : int;
  cols : int;
  a : float array array; (* rows x cols, original (never mutated) *)
  b : float array; (* rhs >= 0 *)
  c2 : float array; (* phase-2 costs *)
  nstruct : int;
  first_artificial : int;
  basis : int array;
}

(* Standard form: [structural | slack/surplus | artificial] columns with
   an identity initial basis (slack for <=, artificial for >= and =). *)
let standardize problem =
  let nstruct = Problem.num_vars problem in
  let rows = Problem.num_constraints problem in
  let n_slack = ref 0 and n_art = ref 0 in
  Problem.iter_constraints problem (fun _ sense rhs ->
      let sense =
        if rhs < 0.0 then
          match sense with
          | Problem.Le -> Problem.Ge
          | Problem.Ge -> Problem.Le
          | Problem.Eq -> Problem.Eq
        else sense
      in
      match sense with
      | Problem.Le -> incr n_slack
      | Problem.Ge ->
          incr n_slack;
          incr n_art
      | Problem.Eq -> incr n_art);
  let first_artificial = nstruct + !n_slack in
  let cols = first_artificial + !n_art in
  let a = Array.init rows (fun _ -> Array.make cols 0.0) in
  let b = Array.make rows 0.0 in
  let basis = Array.make rows (-1) in
  let c2 = Array.make cols 0.0 in
  Array.blit (Problem.objective problem) 0 c2 0 nstruct;
  let slack_next = ref nstruct and art_next = ref first_artificial in
  let r = ref 0 in
  Problem.iter_constraints problem (fun terms sense rhs ->
      let flip = rhs < 0.0 in
      Array.iter
        (fun (v, coeff) ->
          a.(!r).(v) <- a.(!r).(v) +. (if flip then -.coeff else coeff))
        terms;
      b.(!r) <- (if flip then -.rhs else rhs);
      let sense =
        if flip then
          match sense with
          | Problem.Le -> Problem.Ge
          | Problem.Ge -> Problem.Le
          | Problem.Eq -> Problem.Eq
        else sense
      in
      (match sense with
      | Problem.Le ->
          a.(!r).(!slack_next) <- 1.0;
          basis.(!r) <- !slack_next;
          incr slack_next
      | Problem.Ge ->
          a.(!r).(!slack_next) <- -1.0;
          incr slack_next;
          a.(!r).(!art_next) <- 1.0;
          basis.(!r) <- !art_next;
          incr art_next
      | Problem.Eq ->
          a.(!r).(!art_next) <- 1.0;
          basis.(!r) <- !art_next;
          incr art_next);
      incr r);
  { rows; cols; a; b; c2; nstruct; first_artificial; basis }

(* Recompute B^-1 from the basis columns by Gauss-Jordan with partial
   pivoting; returns false if the basis matrix is (numerically)
   singular. *)
let refactorize st binv =
  let k = st.rows in
  let work = Array.init k (fun r -> Array.init k (fun c -> st.a.(r).(st.basis.(c)))) in
  for r = 0 to k - 1 do
    for c = 0 to k - 1 do
      binv.(r).(c) <- (if r = c then 1.0 else 0.0)
    done
  done;
  let ok = ref true in
  for col = 0 to k - 1 do
    if !ok then begin
      let pivot = ref col in
      for r = col + 1 to k - 1 do
        if Float.abs work.(r).(col) > Float.abs work.(!pivot).(col) then
          pivot := r
      done;
      if Float.abs work.(!pivot).(col) < 1e-12 then ok := false
      else begin
        if !pivot <> col then begin
          let t = work.(col) in
          work.(col) <- work.(!pivot);
          work.(!pivot) <- t;
          let t = binv.(col) in
          binv.(col) <- binv.(!pivot);
          binv.(!pivot) <- t
        end;
        let inv = 1.0 /. work.(col).(col) in
        for c = 0 to k - 1 do
          work.(col).(c) <- work.(col).(c) *. inv;
          binv.(col).(c) <- binv.(col).(c) *. inv
        done;
        for r = 0 to k - 1 do
          if r <> col then begin
            let f = work.(r).(col) in
            if Float.abs f > 0.0 then begin
              for c = 0 to k - 1 do
                work.(r).(c) <- work.(r).(c) -. (f *. work.(col).(c));
                binv.(r).(c) <- binv.(r).(c) -. (f *. binv.(col).(c))
              done
            end
          end
        done
      end
    end
  done;
  !ok

type phase_result = Opt | Unbounded_dir | Iters_exhausted

let solve ?max_iters problem =
  let st = standardize problem in
  let k = st.rows in
  let binv = Array.init k (fun r -> Array.init k (fun c -> if r = c then 1.0 else 0.0)) in
  let is_basic = Array.make st.cols false in
  Array.iter (fun j -> is_basic.(j) <- true) st.basis;
  let budget =
    match max_iters with
    | Some b -> b
    | None -> max 100_000 (50 * (st.rows + st.cols))
  in
  let bland_after = 10 * (st.rows + st.cols) in
  let iters = ref 0 in
  let xb = Array.make k 0.0 in
  let compute_xb () =
    for r = 0 to k - 1 do
      let acc = ref 0.0 in
      for c = 0 to k - 1 do
        acc := !acc +. (binv.(r).(c) *. st.b.(c))
      done;
      xb.(r) <- !acc
    done
  in
  let y = Array.make k 0.0 in
  let compute_y cost =
    for c = 0 to k - 1 do
      let acc = ref 0.0 in
      for r = 0 to k - 1 do
        acc := !acc +. (cost st.basis.(r) *. binv.(r).(c))
      done;
      y.(c) <- !acc
    done
  in
  let reduced cost j =
    let acc = ref (cost j) in
    for r = 0 to k - 1 do
      let arj = st.a.(r).(j) in
      if arj <> 0.0 then acc := !acc -. (y.(r) *. arj)
    done;
    !acc
  in
  let u = Array.make k 0.0 in
  let compute_u j =
    for r = 0 to k - 1 do
      let acc = ref 0.0 in
      for c = 0 to k - 1 do
        let acj = st.a.(c).(j) in
        if acj <> 0.0 then acc := !acc +. (binv.(r).(c) *. acj)
      done;
      u.(r) <- !acc
    done
  in
  let pivot_update ~leave ~enter =
    let d = u.(leave) in
    let inv = 1.0 /. d in
    for c = 0 to k - 1 do
      binv.(leave).(c) <- binv.(leave).(c) *. inv
    done;
    for r = 0 to k - 1 do
      if r <> leave then begin
        let f = u.(r) in
        if Float.abs f > 0.0 then
          for c = 0 to k - 1 do
            binv.(r).(c) <- binv.(r).(c) -. (f *. binv.(leave).(c))
          done
      end
    done;
    is_basic.(st.basis.(leave)) <- false;
    is_basic.(enter) <- true;
    st.basis.(leave) <- enter
  in
  let run_phase cost ~limit =
    let rec loop () =
      if !iters >= budget then Iters_exhausted
      else begin
        if !iters mod 64 = 63 then ignore (refactorize st binv);
        compute_y cost;
        let bland = !iters > bland_after in
        (* entering column *)
        let enter = ref (-1) and best = ref (-.eps) in
        (try
           for j = 0 to limit - 1 do
             if not is_basic.(j) then begin
               let rc = reduced cost j in
               if bland then begin
                 if rc < -.eps then begin
                   enter := j;
                   raise Exit
                 end
               end
               else if rc < !best then begin
                 best := rc;
                 enter := j
               end
             end
           done
         with Exit -> ());
        if !enter < 0 then Opt
        else begin
          compute_u !enter;
          compute_xb ();
          let leave = ref (-1) and best_ratio = ref infinity in
          for r = 0 to k - 1 do
            if u.(r) > eps then begin
              let ratio = Float.max 0.0 xb.(r) /. u.(r) in
              if
                ratio < !best_ratio -. eps
                || (ratio < !best_ratio +. eps
                   && !leave >= 0
                   && st.basis.(r) < st.basis.(!leave))
              then begin
                best_ratio := ratio;
                leave := r
              end
            end
          done;
          if !leave < 0 then Unbounded_dir
          else begin
            pivot_update ~leave:!leave ~enter:!enter;
            incr iters;
            loop ()
          end
        end
      end
    in
    loop ()
  in
  let phase1_needed = st.first_artificial < st.cols in
  let c1 j = if j >= st.first_artificial then 1.0 else 0.0 in
  let feasible =
    if not phase1_needed then true
    else
      match run_phase c1 ~limit:st.cols with
      | Opt ->
          compute_xb ();
          let obj = ref 0.0 in
          for r = 0 to k - 1 do
            obj := !obj +. (c1 st.basis.(r) *. Float.max 0.0 xb.(r))
          done;
          if !obj > feas_tol then false
          else begin
            (* Expel zero-level artificial basics where possible. *)
            for r = 0 to k - 1 do
              if st.basis.(r) >= st.first_artificial then begin
                let found = ref (-1) in
                (try
                   for j = 0 to st.first_artificial - 1 do
                     if not is_basic.(j) then begin
                       compute_u j;
                       if Float.abs u.(r) > 1e-7 then begin
                         found := j;
                         raise Exit
                       end
                     end
                   done
                 with Exit -> ());
                if !found >= 0 then begin
                  compute_u !found;
                  pivot_update ~leave:r ~enter:!found
                end
              end
            done;
            true
          end
      | Unbounded_dir -> false
      | Iters_exhausted -> raise Exit
  in
  match
    if not feasible then Simplex.Infeasible
    else begin
      let c2 j = if j < st.cols then st.c2.(j) else 0.0 in
      match run_phase c2 ~limit:st.first_artificial with
      | Opt ->
          compute_xb ();
          let x = Array.make st.nstruct 0.0 in
          for r = 0 to k - 1 do
            let j = st.basis.(r) in
            if j < st.nstruct then x.(j) <- Float.max 0.0 xb.(r)
          done;
          Simplex.Optimal
            { objective = Problem.objective_value problem x; x }
      | Unbounded_dir -> Simplex.Unbounded
      | Iters_exhausted -> Simplex.Iteration_limit
    end
  with
  | result -> result
  | exception Exit -> Simplex.Iteration_limit

let solve_exn ?max_iters problem =
  match solve ?max_iters problem with
  | Simplex.Optimal { objective; x } -> (objective, x)
  | Simplex.Infeasible -> failwith (Problem.name problem ^ ": infeasible")
  | Simplex.Unbounded -> failwith (Problem.name problem ^ ": unbounded")
  | Simplex.Iteration_limit ->
      failwith (Problem.name problem ^ ": iteration limit")
