(** Dense two-phase primal simplex.

    Solves the minimization problems built with {!Problem}.  Uses Dantzig
    pricing with an automatic switch to Bland's rule to guarantee
    termination under degeneracy, and a full-tableau implementation — ample
    for the (LP1)/(LP2) relaxations, whose tableaux have [n + m] rows.

    All comparisons use an absolute tolerance of [1e-9]; callers should
    treat returned values as accurate to roughly [1e-7] relative. *)

type result =
  | Optimal of { objective : float; x : float array }
      (** An optimal vertex: [x.(v)] is the value of variable [v]. *)
  | Infeasible
  | Unbounded
  | Iteration_limit
      (** The pivot budget was exhausted (pathological inputs only). *)

val solve : ?max_iters:int -> Problem.t -> result
(** [solve p] optimizes [p].  [max_iters] defaults to
    [max 100_000 (50 * (rows + cols))]. *)

val solve_exn : ?max_iters:int -> Problem.t -> float * float array
(** Like {!solve} but raises [Failure] unless the result is [Optimal];
    returns [(objective, x)]. *)

type detailed = { objective : float; x : float array; duals : float array }
(** An optimal solution together with its dual values, one per constraint
    (in insertion order).  Sign convention: the Lagrangian is
    [c.x - sum_r duals_r (row_r - rhs_r)], so at optimality
    [objective = sum_r duals_r * rhs_r] (strong duality) and the reduced
    cost [c_j - sum_r duals_r a_rj] of every variable is nonnegative. *)

val solve_detailed : ?max_iters:int -> Problem.t -> detailed option
(** [solve_detailed p] is the optimal primal and dual solution, or [None]
    when [p] is infeasible, unbounded, or hit the pivot budget. *)
