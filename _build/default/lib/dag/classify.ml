type shape =
  | Independent
  | Disjoint_chains of Chains.t
  | Directed_forest of int array list array
  | General

let classify g =
  if Dag.is_edgeless g then Independent
  else
    match Chains.of_dag g with
    | Some chains -> Disjoint_chains chains
    | None -> (
        match Forest.decompose g with
        | Some blocks -> Directed_forest blocks
        | None -> General)

let describe = function
  | Independent -> "independent"
  | Disjoint_chains chains ->
      Printf.sprintf "disjoint chains (%d chains)" (List.length chains)
  | Directed_forest blocks ->
      Printf.sprintf "directed forest (%d blocks)" (Array.length blocks)
  | General -> "general dag"
