lib/dag/forest.ml: Array Dag Hashtbl List Queue Stack
