lib/dag/forest.mli: Dag
