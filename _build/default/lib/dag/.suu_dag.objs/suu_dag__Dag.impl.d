lib/dag/dag.ml: Array Hashtbl Int List Set Stack
