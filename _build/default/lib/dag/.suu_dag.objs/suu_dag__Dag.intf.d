lib/dag/dag.mli:
