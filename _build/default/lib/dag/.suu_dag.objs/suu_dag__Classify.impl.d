lib/dag/classify.ml: Array Chains Dag Forest List Printf
