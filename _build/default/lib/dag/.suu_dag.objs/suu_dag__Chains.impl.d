lib/dag/chains.ml: Array Dag List
