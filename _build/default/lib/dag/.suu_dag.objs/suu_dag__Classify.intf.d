lib/dag/classify.mli: Chains Dag
