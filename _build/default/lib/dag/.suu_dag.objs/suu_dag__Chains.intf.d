lib/dag/chains.mli: Dag
