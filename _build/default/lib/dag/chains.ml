type t = int array list

let of_dag g =
  let n = Dag.size g in
  let ok = ref true in
  for j = 0 to n - 1 do
    if Dag.in_degree g j > 1 || Dag.out_degree g j > 1 then ok := false
  done;
  if not !ok then None
  else begin
    (* Every component is a path: walk forward from each source. *)
    let used = Array.make n false in
    let chains = ref [] in
    for start = 0 to n - 1 do
      if (not used.(start)) && Dag.in_degree g start = 0 then begin
        let rec walk j acc =
          used.(j) <- true;
          match Dag.succs g j with
          | [] -> List.rev (j :: acc)
          | [ next ] -> walk next (j :: acc)
          | _ -> assert false
        in
        chains := Array.of_list (walk start []) :: !chains
      end
    done;
    (* In a dag with all degrees <= 1, every node is reachable from a
       source, so all nodes are used. *)
    assert (Array.for_all (fun u -> u) used);
    Some (List.rev !chains)
  end

let to_dag ~n chains =
  let seen = Array.make n false in
  let edges = ref [] in
  List.iter
    (fun chain ->
      Array.iteri
        (fun k j ->
          if j < 0 || j >= n then invalid_arg "Chains.to_dag: out of range";
          if seen.(j) then invalid_arg "Chains.to_dag: duplicate job";
          seen.(j) <- true;
          if k > 0 then edges := (chain.(k - 1), j) :: !edges)
        chain)
    chains;
  Dag.of_edges ~n !edges

let total_jobs chains =
  List.fold_left (fun acc c -> acc + Array.length c) 0 chains

let max_length chains =
  List.fold_left (fun acc c -> max acc (Array.length c)) 0 chains

let chain_of_job ~n chains =
  let chain_index = Array.make n (-1) in
  let position = Array.make n (-1) in
  List.iteri
    (fun ci chain ->
      Array.iteri
        (fun k j ->
          chain_index.(j) <- ci;
          position.(j) <- k)
        chain)
    chains;
  (chain_index, position)
