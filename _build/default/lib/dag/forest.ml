type orientation = Out_tree | In_tree

(* Per weakly-connected component: the node set and a valid orientation,
   or None when some component is neither an in- nor an out-tree. *)
let orient g =
  let n = Dag.size g in
  let label = Dag.components g in
  let ncomp =
    Array.fold_left (fun acc c -> max acc (c + 1)) 0 label
  in
  let members = Array.make ncomp [] in
  for j = n - 1 downto 0 do
    members.(label.(j)) <- j :: members.(label.(j))
  done;
  let classify nodes =
    let edges =
      List.fold_left (fun acc j -> acc + Dag.out_degree g j) 0 nodes
    in
    let tree = edges = List.length nodes - 1 in
    if not tree then None
    else if List.for_all (fun j -> Dag.in_degree g j <= 1) nodes then
      Some Out_tree
    else if List.for_all (fun j -> Dag.out_degree g j <= 1) nodes then
      Some In_tree
    else None
  in
  let oriented = Array.map (fun nodes -> (nodes, classify nodes)) members in
  if Array.for_all (fun (_, o) -> o <> None) oriented then
    Some
      (Array.map
         (fun (nodes, o) ->
           match o with Some o -> (nodes, o) | None -> assert false)
         oriented)
  else None

let is_forest g = orient g <> None

(* Heavy-path decomposition of one tree component.  [children] gives the
   tree children of a node (successors for an out-tree, predecessors for an
   in-tree); [root] is the unique node without a tree parent.  Returns
   chains as (light_depth, path-from-head-downward) pairs. *)
let heavy_paths ~children ~root =
  (* Iterative preorder; sizes in reverse preorder. *)
  let preorder = ref [] in
  let stack = Stack.create () in
  Stack.push root stack;
  while not (Stack.is_empty stack) do
    let v = Stack.pop stack in
    preorder := v :: !preorder;
    List.iter (fun c -> Stack.push c stack) (children v)
  done;
  let rev_preorder = !preorder in
  let size = Hashtbl.create 64 in
  List.iter
    (fun v ->
      let s =
        List.fold_left (fun acc c -> acc + Hashtbl.find size c) 1 (children v)
      in
      Hashtbl.replace size v s)
    rev_preorder;
  let heavy v =
    match children v with
    | [] -> None
    | cs ->
        let best =
          List.fold_left
            (fun best c ->
              match best with
              | None -> Some c
              | Some b ->
                  if Hashtbl.find size c > Hashtbl.find size b then Some c
                  else best)
            None cs
        in
        best
  in
  (* Walk heads: a head is the root or any non-heavy child; its light depth
     is one more than its parent chain's. *)
  let chains = ref [] in
  let heads = Queue.create () in
  Queue.add (root, 0) heads;
  while not (Queue.is_empty heads) do
    let h, depth = Queue.take heads in
    let rec follow v acc =
      let hv = heavy v in
      List.iter
        (fun c ->
          match hv with
          | Some b when b = c -> ()
          | _ -> Queue.add (c, depth + 1) heads)
        (children v);
      match hv with
      | None -> List.rev (v :: acc)
      | Some b -> follow b (v :: acc)
    in
    chains := (depth, Array.of_list (follow h [])) :: !chains
  done;
  List.rev !chains

let decompose g =
  match orient g with
  | None -> None
  | Some comps ->
      let tagged = ref [] in
      Array.iter
        (fun (nodes, o) ->
          match o with
          | Out_tree ->
              let root =
                List.find (fun j -> Dag.in_degree g j = 0) nodes
              in
              let paths =
                heavy_paths ~children:(fun v -> Dag.succs g v) ~root
              in
              (* Out-tree: predecessors are ancestors; heads closer to the
                 root must run first, and chains run top-down. *)
              List.iter (fun (d, c) -> tagged := (d, c) :: !tagged) paths
          | In_tree ->
              let root =
                List.find (fun j -> Dag.out_degree g j = 0) nodes
              in
              let paths =
                heavy_paths ~children:(fun v -> Dag.preds g v) ~root
              in
              (* In-tree: predecessors are descendants; deepest blocks run
                 first and each chain runs bottom-up (reversed path). *)
              let dmax =
                List.fold_left (fun acc (d, _) -> max acc d) 0 paths
              in
              List.iter
                (fun (d, c) ->
                  let rev = Array.of_list (List.rev (Array.to_list c)) in
                  tagged := (dmax - d, rev) :: !tagged)
                paths)
        comps;
      let nblocks =
        List.fold_left (fun acc (d, _) -> max acc (d + 1)) 0 !tagged
      in
      let blocks = Array.make (max nblocks 1) [] in
      List.iter (fun (d, c) -> blocks.(d) <- c :: blocks.(d)) !tagged;
      Some (Array.map List.rev blocks)
