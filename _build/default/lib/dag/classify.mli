(** Recognize which of the paper's precedence-constraint classes an
    instance belongs to, so the right algorithm (SUU-I / SUU-C / SUU-T) can
    be dispatched automatically. *)

type shape =
  | Independent  (** no precedence constraints: SUU-I applies *)
  | Disjoint_chains of Chains.t  (** SUU-C applies *)
  | Directed_forest of int array list array
      (** block decomposition, SUU-T applies *)
  | General  (** beyond the paper's approximation algorithms *)

val classify : Dag.t -> shape
(** [classify g] returns the most specific applicable shape (edgeless
    before chains before forests). *)

val describe : shape -> string
