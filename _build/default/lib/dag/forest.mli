(** Chain decomposition of directed forests (paper Appendix B).

    The paper obtains its SUU-T algorithm by decomposing a directed forest
    into [O(log n)] blocks, each a collection of vertex-disjoint chains,
    and running SUU-C once per block (the technique of Kumar, Marathe,
    Parthasarathy and Srinivasan).  We realize the decomposition with
    heavy-path decomposition: within each tree, block [k] holds the heavy
    paths whose head sits below exactly [k] light edges.  Because every
    light edge at least halves the subtree size, there are at most
    [floor(log2 n) + 1] blocks, and all predecessors of a chain in block
    [k] lie in blocks before [k]. *)

val is_forest : Dag.t -> bool
(** [is_forest g] is true when every weakly-connected component of [g] is
    an out-tree (every in-degree <= 1) or an in-tree (every out-degree
    <= 1). *)

val decompose : Dag.t -> int array list array option
(** [decompose g] returns [Some blocks] when [g] is a directed forest:
    [blocks.(k)] lists the chains of block [k], each an array of jobs in
    execution order, such that executing blocks in index order respects
    every precedence constraint.  Chains across one block are
    vertex-disjoint.  Returns [None] when [g] is not a directed forest.
    Isolated jobs appear as singleton chains in block 0. *)
