(** Chain-shaped precedence constraints (the SUU-C setting).

    A chain collection partitions the jobs into totally ordered sequences;
    isolated jobs are singleton chains. *)

type t = int array list
(** Each array lists one chain's jobs in precedence order. *)

val of_dag : Dag.t -> t option
(** [of_dag g] recognizes a dag whose components are simple directed paths
    and returns its chains (each including singletons), deterministically
    ordered by first job.  [None] when some job has in- or out-degree
    above one or a component is not a path. *)

val to_dag : n:int -> t -> Dag.t
(** [to_dag ~n chains] is the dag with an edge between consecutive chain
    elements.  Raises [Invalid_argument] if a job appears twice or is out
    of range. *)

val total_jobs : t -> int

val max_length : t -> int
(** Length (in jobs) of the longest chain; 0 for the empty collection. *)

val chain_of_job : n:int -> t -> int array * int array
(** [chain_of_job ~n chains] returns [(chain_index, position)] arrays
    mapping each job to its chain id and offset; jobs not mentioned map to
    [(-1, -1)]. *)
