lib/prng/rng.mli:
