(** Deterministic pseudo-random number generation.

    Every stochastic component of this repository (workload generators, SUU*
    traces, random delays) draws from this module so experiments are exactly
    reproducible from a seed.  The generator is xoshiro256** seeded through
    splitmix64, the combination recommended by Blackman and Vigna; it is
    fast, has a 2^256-1 period, and supports cheap independent substreams
    via {!split}. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator deterministically from [seed] (any
    int, including negative values). *)

val copy : t -> t
(** [copy t] duplicates the state; the copy evolves independently. *)

val split : t -> t
(** [split t] draws from [t] to seed a fresh, statistically independent
    generator.  [t] advances. *)

val bits64 : t -> int64
(** [bits64 t] returns the next 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t n] is uniform on [0, n-1].  Raises [Invalid_argument] when
    [n <= 0].  Uses rejection sampling, so it is exactly uniform. *)

val float : t -> float -> float
(** [float t x] is uniform on [0, x), with 53 random mantissa bits. *)

val uniform_open : t -> float
(** [uniform_open t] is uniform on the open interval (0, 1) — never exactly
    0 or 1, as required for SUU* thresholds [-log2 r]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val range : t -> lo:float -> hi:float -> float
(** [range t ~lo ~hi] is uniform on [lo, hi).  Requires [lo <= hi]. *)

val exponential : t -> rate:float -> float
(** [exponential t ~rate] samples Exp(rate), mean [1/rate].  Requires
    [rate > 0]. *)

val geometric : t -> p:float -> int
(** [geometric t ~p] is the number of Bernoulli(p) trials up to and
    including the first success (support {1, 2, ...}, mean [1/p]).
    Requires [0 < p <= 1].  Sampled by inversion, O(1). *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] uniformly in place (Fisher–Yates). *)
