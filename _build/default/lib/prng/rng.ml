type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64;
           mutable s3 : int64 }

(* splitmix64: used only to expand a seed into xoshiro state. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_seed64 seed =
  let state = ref seed in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let create ~seed = of_seed64 (Int64.of_int seed)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256** next *)
let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_seed64 (bits64 t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits for exact uniformity. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFFL in
  let bound = Int64.of_int n in
  let rec draw () =
    let v = Int64.logand (bits64 t) mask in
    let lim = Int64.sub mask (Int64.rem mask bound) in
    if Int64.unsigned_compare v lim >= 0 then draw ()
    else Int64.to_int (Int64.rem v bound)
  in
  draw ()

let float t x =
  (* 53 random bits over [0,1), scaled. *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53 *. x

let uniform_open t =
  let rec draw () =
    let u = float t 1.0 in
    if u > 0.0 then u else draw ()
  in
  draw ()

let bool t = Int64.logand (bits64 t) 1L = 1L

let range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.range: lo > hi";
  lo +. float t (hi -. lo)

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  -.log (uniform_open t) /. rate

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p = 1.0 then 1
  else
    let u = uniform_open t in
    let k = ceil (log u /. log (1.0 -. p)) in
    max 1 (int_of_float k)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
