(** Multicore replication (OCaml 5 domains).

    Replications are embarrassingly parallel: each runs an independent
    trace.  This module fans the per-replication work of {!Runner} out
    over domains, with bit-identical results: the per-replication
    generators come from {!Runner.rep_rngs}, so
    [Parallel.makespans ~domains:k] equals [Runner.makespans] for every
    [k].

    Policies are created per domain through a factory, because a policy
    value may close over scratch buffers that are not safe to share
    (e.g. the greedy baselines' per-step arrays, or SUU-C's stats
    sink). *)

val makespans :
  ?cap:int ->
  ?domains:int ->
  Suu_core.Instance.t ->
  policy:(unit -> Suu_core.Policy.t) ->
  seed:int ->
  reps:int ->
  float array
(** [makespans inst ~policy ~seed ~reps] runs [reps] executions across
    [domains] domains (default: [Domain.recommended_domain_count],
    capped at [reps]).  [policy ()] is called once per domain.  Raises
    [Invalid_argument] on non-positive [reps] or [domains]. *)

val expected_makespan :
  ?cap:int ->
  ?domains:int ->
  Suu_core.Instance.t ->
  policy:(unit -> Suu_core.Policy.t) ->
  seed:int ->
  reps:int ->
  float
(** Mean of {!makespans}. *)
