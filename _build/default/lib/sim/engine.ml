module Instance = Suu_core.Instance
module Policy = Suu_core.Policy

exception Invalid_schedule of string
exception Horizon_exceeded of int

type result = {
  makespan : int;
  busy_steps : int;
  wasted_steps : int;
  idle_steps : int;
}

let run ?(cap = 4_000_000) ?on_step inst policy ~trace ~rng =
  let n = Instance.n inst in
  let m = Instance.m inst in
  if Trace.n trace <> n then invalid_arg "Engine.run: trace size mismatch";
  let g = Instance.dag inst in
  let remaining = Array.make n true in
  let mass = Array.make n 0.0 in
  let eligible = Array.make n false in
  let completed = Array.make n false in
  let refresh_eligible () =
    for j = 0 to n - 1 do
      eligible.(j) <-
        remaining.(j) && Suu_dag.Dag.eligible g ~completed j
    done
  in
  let left = ref n in
  (* Zero thresholds (r_j = 1) complete with no work at all. *)
  for j = 0 to n - 1 do
    if Trace.threshold trace j <= 0.0 then begin
      remaining.(j) <- false;
      completed.(j) <- true;
      decr left
    end
  done;
  refresh_eligible ();
  let stepper = Policy.fresh policy (Suu_prng.Rng.split rng) in
  let busy = ref 0 and wasted = ref 0 and idle = ref 0 in
  let time = ref 0 in
  while !left > 0 do
    if !time >= cap then raise (Horizon_exceeded cap);
    let a = stepper ~time:!time ~remaining ~eligible in
    (match on_step with
    | Some f -> f ~time:!time ~assignment:a
    | None -> ());
    if Array.length a <> m then
      raise
        (Invalid_schedule
           (Printf.sprintf "%s: assignment has %d entries for %d machines"
              (Policy.name policy) (Array.length a) m));
    let touched = ref [] in
    for i = 0 to m - 1 do
      let j = a.(i) in
      if j = -1 then incr idle
      else if j < 0 || j >= n then
        raise
          (Invalid_schedule
             (Printf.sprintf "%s: machine %d assigned to bad job %d"
                (Policy.name policy) i j))
      else if not remaining.(j) then incr wasted
      else if not eligible.(j) then
        raise
          (Invalid_schedule
             (Printf.sprintf
                "%s: machine %d assigned to ineligible job %d at step %d"
                (Policy.name policy) i j !time))
      else begin
        incr busy;
        if mass.(j) < Trace.threshold trace j then begin
          mass.(j) <- mass.(j) +. Instance.log_failure inst i j;
          touched := j :: !touched
        end
      end
    done;
    (* Completions take effect at the end of the unit step. *)
    let any_completed = ref false in
    List.iter
      (fun j ->
        if remaining.(j) && mass.(j) >= Trace.threshold trace j -. 1e-12
        then begin
          remaining.(j) <- false;
          completed.(j) <- true;
          decr left;
          any_completed := true
        end)
      !touched;
    if !any_completed then refresh_eligible ();
    incr time
  done;
  { makespan = !time; busy_steps = !busy; wasted_steps = !wasted;
    idle_steps = !idle }

let makespan ?cap inst policy ~trace ~rng =
  (run ?cap inst policy ~trace ~rng).makespan

let run_recorded ?cap inst policy ~trace ~rng =
  let rows = ref [] in
  let on_step ~time:_ ~assignment = rows := Array.copy assignment :: !rows in
  let result = run ?cap ~on_step inst policy ~trace ~rng in
  (result, Array.of_list (List.rev !rows))
