let alphabet = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

let job_symbol j =
  if j < 0 then '.' else alphabet.[j mod String.length alphabet]

let utilization steps =
  match Array.length steps with
  | 0 -> [||]
  | t ->
      let m = Array.length steps.(0) in
      let busy = Array.make m 0 in
      Array.iter
        (Array.iteri (fun i j -> if j >= 0 then busy.(i) <- busy.(i) + 1))
        steps;
      Array.map (fun b -> float_of_int b /. float_of_int t) busy

let render ?(max_width = 100) steps =
  let t = Array.length steps in
  if t = 0 then ""
  else begin
    let m = Array.length steps.(0) in
    let stride = max 1 ((t + max_width - 1) / max_width) in
    let cols = (t + stride - 1) / stride in
    let buf = Buffer.create ((m + 2) * (cols + 16)) in
    for i = 0 to m - 1 do
      Buffer.add_string buf (Printf.sprintf "m%-3d " i);
      for c = 0 to cols - 1 do
        Buffer.add_char buf (job_symbol steps.(c * stride).(i))
      done;
      Buffer.add_char buf '\n'
    done;
    if stride > 1 then
      Buffer.add_string buf
        (Printf.sprintf "     (1 column = %d steps, %d steps total)\n"
           stride t);
    Buffer.contents buf
  end
