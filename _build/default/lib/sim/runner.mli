(** Replication harness: repeated executions over independent traces.

    Seeds are derived deterministically, so any experiment is reproducible
    from [(instance, policy, seed, reps)]; when several policies are run
    with the same seed they see *identical* traces (paired comparison, as
    in the paper's offline/online argument). *)

val makespans :
  ?cap:int -> Suu_core.Instance.t -> Suu_core.Policy.t -> seed:int -> reps:int ->
  float array
(** [makespans inst policy ~seed ~reps] runs [reps] independent
    executions and returns their makespans. *)

val expected_makespan :
  ?cap:int -> Suu_core.Instance.t -> Suu_core.Policy.t -> seed:int -> reps:int ->
  float
(** Mean of {!makespans}. *)

val ratio_to_bound :
  ?cap:int -> Suu_core.Instance.t -> Suu_core.Policy.t -> bound:float -> seed:int ->
  reps:int -> float
(** [ratio_to_bound inst policy ~bound] is
    [expected_makespan / max bound 1e-9] — the measured approximation
    ratio against a lower bound. *)

val rep_rngs :
  seed:int -> reps:int -> (Suu_prng.Rng.t * Suu_prng.Rng.t) array
(** [rep_rngs ~seed ~reps] derives the per-replication
    [(trace_rng, policy_rng)] pairs in the canonical order — shared with
    {!Parallel} so parallel and sequential runs see identical traces. *)
