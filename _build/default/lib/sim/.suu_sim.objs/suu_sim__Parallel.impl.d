lib/sim/parallel.ml: Array Domain Engine List Runner Suu_core Trace
