lib/sim/trace.mli: Suu_prng
