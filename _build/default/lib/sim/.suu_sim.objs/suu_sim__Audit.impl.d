lib/sim/audit.ml: Array List Printf String Suu_core Suu_dag Trace
