lib/sim/runner.mli: Suu_core Suu_prng
