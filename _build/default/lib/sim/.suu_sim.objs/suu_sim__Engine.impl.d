lib/sim/engine.ml: Array List Printf Suu_core Suu_dag Suu_prng Trace
