lib/sim/trace.ml: Array Suu_prng
