lib/sim/gantt.mli:
