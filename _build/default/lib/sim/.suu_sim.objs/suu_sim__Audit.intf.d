lib/sim/audit.mli: Suu_core Trace
