lib/sim/parallel.mli: Suu_core
