lib/sim/gantt.ml: Array Buffer Printf String
