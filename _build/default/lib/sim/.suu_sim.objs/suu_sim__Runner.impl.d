lib/sim/runner.ml: Array Engine Float Suu_core Suu_prng Trace
