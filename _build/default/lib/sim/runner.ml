(* Per-rep generators are derived in a deterministic order (explicit loop
   — Array.init's effect order is unspecified), so run k always sees the
   same trace regardless of how many reps follow. *)
let rep_rngs ~seed ~reps =
  let master = Suu_prng.Rng.create ~seed in
  let pairs = Array.make reps None in
  for k = 0 to reps - 1 do
    let trace_rng = Suu_prng.Rng.split master in
    let policy_rng = Suu_prng.Rng.split master in
    pairs.(k) <- Some (trace_rng, policy_rng)
  done;
  Array.map (function Some p -> p | None -> assert false) pairs

let makespans ?cap inst policy ~seed ~reps =
  if reps <= 0 then invalid_arg "Runner.makespans: reps must be positive";
  let rngs = rep_rngs ~seed ~reps in
  Array.map
    (fun (trace_rng, policy_rng) ->
      let trace = Trace.draw ~n:(Suu_core.Instance.n inst) trace_rng in
      float_of_int (Engine.makespan ?cap inst policy ~trace ~rng:policy_rng))
    rngs

let expected_makespan ?cap inst policy ~seed ~reps =
  let xs = makespans ?cap inst policy ~seed ~reps in
  Array.fold_left ( +. ) 0.0 xs /. float_of_int reps

let ratio_to_bound ?cap inst policy ~bound ~seed ~reps =
  expected_makespan ?cap inst policy ~seed ~reps /. Float.max bound 1e-9
