(** Independent validation of recorded executions.

    The engine enforces the SUU model on the fly; this module re-derives
    everything from scratch — given only the instance, the trace and the
    recorded step-by-step assignments — and checks that the execution
    obeyed the model.  Because it shares no code with the engine's
    bookkeeping, it serves as a differential test of the engine itself
    (and of any external schedule fed to it). *)

type violation = {
  step : int;  (** 0-based step at which the violation occurred *)
  message : string;
}

val check :
  Suu_core.Instance.t -> trace:Trace.t -> steps:int array array ->
  (unit, violation) result
(** [check inst ~trace ~steps] replays [steps] (one row per unit step,
    one machine → job entry per column, [-1] = idle) and verifies:

    - every row has exactly [m] entries and refers to valid jobs;
    - no machine is ever assigned an uncompleted job whose predecessors
      are not all complete (eligibility);
    - by the final step, every job's accrued log mass reaches its trace
      threshold (all jobs complete);
    - no job receives work after its completion threshold was reached
      {e and} counts it toward completion (assignments to completed jobs
      are legal but must do nothing).

    Returns [Ok ()] or the first violation found. *)

val completion_times :
  Suu_core.Instance.t -> trace:Trace.t -> steps:int array array -> int array
(** [completion_times inst ~trace ~steps] is each job's completion step
    (1-based; [-1] when the job never completes within [steps]),
    recomputed solely from the recording. *)
