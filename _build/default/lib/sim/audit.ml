module Instance = Suu_core.Instance

type violation = { step : int; message : string }

let completion_times inst ~trace ~steps =
  let n = Instance.n inst in
  let mass = Array.make n 0.0 in
  let done_at = Array.make n (-1) in
  for j = 0 to n - 1 do
    if Trace.threshold trace j <= 0.0 then done_at.(j) <- 0
  done;
  Array.iteri
    (fun t row ->
      Array.iteri
        (fun i j ->
          if j >= 0 && j < n && done_at.(j) < 0 then
            mass.(j) <- mass.(j) +. Instance.log_failure inst i j)
        row;
      for j = 0 to n - 1 do
        if done_at.(j) < 0 && mass.(j) >= Trace.threshold trace j -. 1e-12
        then done_at.(j) <- t + 1
      done)
    steps;
  done_at

let check inst ~trace ~steps =
  let n = Instance.n inst and m = Instance.m inst in
  let g = Instance.dag inst in
  let mass = Array.make n 0.0 in
  let completed = Array.make n false in
  for j = 0 to n - 1 do
    if Trace.threshold trace j <= 0.0 then completed.(j) <- true
  done;
  let error = ref None in
  let fail t msg = if !error = None then error := Some { step = t; message = msg } in
  Array.iteri
    (fun t row ->
      if !error = None then begin
        if Array.length row <> m then
          fail t
            (Printf.sprintf "row has %d entries for %d machines"
               (Array.length row) m)
        else begin
          Array.iteri
            (fun i j ->
              if !error = None && j <> -1 then
                if j < 0 || j >= n then
                  fail t (Printf.sprintf "machine %d assigned bad job %d" i j)
                else if not completed.(j) then begin
                  if
                    not
                      (List.for_all
                         (fun p -> completed.(p))
                         (Suu_dag.Dag.preds g j))
                  then
                    fail t
                      (Printf.sprintf "machine %d ran ineligible job %d" i j)
                  else mass.(j) <- mass.(j) +. Instance.log_failure inst i j
                end)
            row;
          (* End-of-step completions, as in the model. *)
          for j = 0 to n - 1 do
            if
              (not completed.(j))
              && mass.(j) >= Trace.threshold trace j -. 1e-12
            then completed.(j) <- true
          done
        end
      end)
    steps;
  match !error with
  | Some v -> Error v
  | None ->
      let unfinished = ref [] in
      for j = n - 1 downto 0 do
        if not completed.(j) then unfinished := j :: !unfinished
      done;
      if !unfinished = [] then Ok ()
      else
        Error
          {
            step = Array.length steps;
            message =
              Printf.sprintf "jobs left incomplete: %s"
                (String.concat ", " (List.map string_of_int !unfinished));
          }
