(** ASCII Gantt rendering of recorded executions.

    Takes the assignment matrix from {!Engine.run_recorded} (one row per
    step, one entry per machine) and draws one text row per machine over
    time: digits/letters identify jobs (modulo the symbol alphabet),
    ['.'] is an idle machine.  Long executions are column-sampled to fit
    a width. *)

val render : ?max_width:int -> int array array -> string
(** [render steps] draws the timeline ([max_width] columns at most,
    default 100; when sampling, each printed column shows the first step
    of its bucket and a scale note is appended).  Returns [""] for an
    empty recording. *)

val utilization : int array array -> float array
(** [utilization steps] is the fraction of steps each machine spent
    non-idle (assignments to completed jobs count as busy — they occupy
    the machine). *)

val job_symbol : int -> char
(** [job_symbol j] is the character used for job [j] ([0-9a-zA-Z],
    cycling). *)
