type t = { w : float array }

let draw ~n rng =
  let w =
    Array.init n (fun _ ->
        -.(log (Suu_prng.Rng.uniform_open rng) /. log 2.0))
  in
  { w }

let of_thresholds w =
  Array.iter
    (fun x ->
      if not (x >= 0.0) then
        invalid_arg "Trace.of_thresholds: negative threshold")
    w;
  { w = Array.copy w }

let n t = Array.length t.w
let threshold t j = t.w.(j)
