let makespans ?cap ?domains inst ~policy ~seed ~reps =
  if reps <= 0 then invalid_arg "Parallel.makespans: reps must be positive";
  let domains =
    match domains with
    | Some d when d <= 0 ->
        invalid_arg "Parallel.makespans: domains must be positive"
    | Some d -> min d reps
    | None -> min (Domain.recommended_domain_count ()) reps
  in
  let rngs = Runner.rep_rngs ~seed ~reps in
  let results = Array.make reps 0.0 in
  let n = Suu_core.Instance.n inst in
  (* Static block partition: domain d owns replications [lo, hi). *)
  let worker d () =
    let pol = policy () in
    let lo = d * reps / domains and hi = (d + 1) * reps / domains in
    for k = lo to hi - 1 do
      let trace_rng, policy_rng = rngs.(k) in
      let trace = Trace.draw ~n trace_rng in
      results.(k) <-
        float_of_int (Engine.makespan ?cap inst pol ~trace ~rng:policy_rng)
    done
  in
  let spawned =
    List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
  in
  worker 0 ();
  List.iter Domain.join spawned;
  results

let expected_makespan ?cap ?domains inst ~policy ~seed ~reps =
  let xs = makespans ?cap ?domains inst ~policy ~seed ~reps in
  Array.fold_left ( +. ) 0.0 xs /. float_of_int reps
