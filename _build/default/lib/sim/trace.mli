(** SUU* traces: the hidden per-job randomness of an execution.

    Following the paper's reformulation (Appendix A), all stochasticity of
    an SUU execution is captured by one uniform draw [r_j] per job: job
    [j] completes at the first step where its accrued log mass reaches the
    threshold [w_j = -log2 r_j].  Theorem 10 proves the resulting state
    process is distributed exactly as the original per-step coin flips.
    Fixing a trace makes executions deterministic, enabling paired
    comparisons of schedules on identical randomness — the offline-versus-
    online view used in the paper's own competitive analysis — and
    adversarial (deterministic-threshold) experiments. *)

type t

val draw : n:int -> Suu_prng.Rng.t -> t
(** [draw ~n rng] samples thresholds [w_j = -log2 r_j] with
    [r_j ~ U(0,1)] for [n] jobs. *)

val of_thresholds : float array -> t
(** [of_thresholds w] fixes the thresholds directly (adversarial /
    deterministic instances, experiment E6).  Raises [Invalid_argument]
    on negative entries. *)

val n : t -> int

val threshold : t -> int -> float
(** [threshold t j] is [w_j]. *)
