type slice = { duration : float; assign : int array }

let tol = 1e-9

(* Pad the m x n timetable to an (m+n) x (n+m) square matrix with all row
   and column sums equal to [horizon]: machine i's idle time goes to dummy
   job n+i, job j's un-served time to dummy machine m+j, and the
   dummy-dummy block absorbs the rest greedily. *)
let pad ~m ~n ~x ~horizon =
  let s = m + n in
  let b = Array.make_matrix s s 0.0 in
  let row_deficit = Array.make s 0.0 in
  let col_deficit = Array.make s 0.0 in
  for i = 0 to m - 1 do
    let sum = ref 0.0 in
    for j = 0 to n - 1 do
      b.(i).(j) <- x.(i).(j);
      sum := !sum +. x.(i).(j)
    done;
    if !sum > horizon *. (1.0 +. 1e-6) +. 1e-9 then
      invalid_arg "Bvn.decompose: machine row exceeds horizon";
    b.(i).(n + i) <- Float.max 0.0 (horizon -. !sum)
  done;
  for j = 0 to n - 1 do
    let sum = ref 0.0 in
    for i = 0 to m - 1 do
      sum := !sum +. x.(i).(j)
    done;
    if !sum > horizon *. (1.0 +. 1e-6) +. 1e-9 then
      invalid_arg "Bvn.decompose: job column exceeds horizon";
    b.(m + j).(j) <- Float.max 0.0 (horizon -. !sum)
  done;
  (* Remaining deficits live entirely in the dummy-dummy block. *)
  for r = 0 to s - 1 do
    let sum = ref 0.0 in
    for c = 0 to s - 1 do
      sum := !sum +. b.(r).(c)
    done;
    row_deficit.(r) <- Float.max 0.0 (horizon -. !sum)
  done;
  for c = 0 to s - 1 do
    let sum = ref 0.0 in
    for r = 0 to s - 1 do
      sum := !sum +. b.(r).(c)
    done;
    col_deficit.(c) <- Float.max 0.0 (horizon -. !sum)
  done;
  (* Northwest-corner fill over dummy rows x dummy columns. *)
  let r = ref m and c = ref n in
  while !r < s && !c < s do
    let amount = Float.min row_deficit.(!r) col_deficit.(!c) in
    if amount > tol then begin
      b.(!r).(!c) <- b.(!r).(!c) +. amount;
      row_deficit.(!r) <- row_deficit.(!r) -. amount;
      col_deficit.(!c) <- col_deficit.(!c) -. amount
    end;
    if row_deficit.(!r) <= tol then incr r else incr c
  done;
  b

let decompose ~m ~n ~x ~horizon =
  if horizon <= 0.0 then invalid_arg "Bvn.decompose: non-positive horizon";
  let s = m + n in
  let b = pad ~m ~n ~x ~horizon in
  let slices = ref [] in
  let remaining = ref (horizon *. float_of_int s) in
  let continue = ref true in
  while !continue && !remaining > horizon *. 1e-9 *. float_of_int s do
    (* Perfect matching over positive entries (exists by Birkhoff while
       the matrix is doubly stochastic). *)
    let adj r =
      let acc = ref [] in
      for c = s - 1 downto 0 do
        if b.(r).(c) > tol then acc := c :: !acc
      done;
      !acc
    in
    let match_l, _ = Suu_flow.Matching.maximum ~left:s ~right:s ~adj in
    if not (Suu_flow.Matching.is_perfect_on_left match_l) then
      continue := false (* numerical dust only; stop *)
    else begin
      let delta = ref infinity in
      for r = 0 to s - 1 do
        if b.(r).(match_l.(r)) < !delta then delta := b.(r).(match_l.(r))
      done;
      let assign = Array.make m (-1) in
      for i = 0 to m - 1 do
        if match_l.(i) < n then assign.(i) <- match_l.(i)
      done;
      slices := { duration = !delta; assign } :: !slices;
      for r = 0 to s - 1 do
        b.(r).(match_l.(r)) <- b.(r).(match_l.(r)) -. !delta;
        remaining := !remaining -. !delta
      done
    end
  done;
  List.rev !slices
