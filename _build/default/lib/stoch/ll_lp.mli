(** The Lawler–Labetoulle linear program for [R|pmtn|Cmax].

    For deterministic lengths [p_j]:

    {v
      minimize   C
      subject to sum_i v_ij x_ij >= p_j   for every job j
                 sum_j x_ij      <= C     for every machine i
                 sum_i x_ij      <= C     for every job j
                 x_ij >= 0
    v}

    Lawler and Labetoulle proved the optimum *is* the optimal preemptive
    makespan and that a feasible [x] can be realized as an explicit
    preemptive schedule ({!Bvn.decompose}).  STC-I solves this once per
    round with lengths [2^(k-2) / lambda_j]. *)

type sol = {
  x : float array array;  (** [x.(i).(j)]: time machine [i] spends on [j] *)
  value : float;  (** the optimal makespan [C] *)
}

val solve : Stoch_instance.t -> lengths:float array -> jobs:int array -> sol
(** [solve inst ~lengths ~jobs] solves the LP restricted to [jobs]
    (entries elsewhere are zero).  [lengths.(j)] must be positive for
    [j] in [jobs].  Raises [Invalid_argument] on bad input, [Failure] if
    the LP solver fails. *)
