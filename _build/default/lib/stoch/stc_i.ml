type run = { makespan : float; offline : float }

let rounds inst =
  let n = Stoch_instance.n inst in
  let loglog =
    if n < 2 then 0.0
    else
      let l2 x = log x /. log 2.0 in
      l2 (Float.max 1.0 (l2 (float_of_int n)))
  in
  max 4 (int_of_float (ceil loglog) + 3)

(* Execute a list of slices against the realized lengths, stopping as
   soon as every job in scope is done.  Returns elapsed time. *)
let execute_slices inst ~slices ~p ~work ~remaining =
  let m = Stoch_instance.m inst in
  let elapsed = ref 0.0 in
  let rec go = function
    | [] -> ()
    | slice :: rest ->
        if Array.for_all not remaining then ()
        else begin
          let { Bvn.duration; assign } = slice in
          if duration > 0.0 then begin
            (* Within the slice, each (machine, job) pair works alone.  A
               job may finish mid-slice; the rest of its machine's slice
               is wasted (harmless for the makespan bound). *)
            for i = 0 to m - 1 do
              let j = assign.(i) in
              if j >= 0 && remaining.(j) then begin
                work.(j) <-
                  work.(j) +. (Stoch_instance.speed inst i j *. duration);
                if work.(j) >= p.(j) -. 1e-12 then remaining.(j) <- false
              end
            done;
            elapsed := !elapsed +. duration
          end;
          go rest
        end
  in
  go slices;
  !elapsed

let simulate inst ~seed =
  let rng = Suu_prng.Rng.create ~seed in
  let n = Stoch_instance.n inst in
  let m = Stoch_instance.m inst in
  let p =
    Array.init n (fun j ->
        Suu_prng.Rng.exponential rng ~rate:(Stoch_instance.rate inst j))
  in
  let offline =
    let jobs = Array.init n Fun.id in
    (Ll_lp.solve inst ~lengths:p ~jobs).Ll_lp.value
  in
  let remaining = Array.make n true in
  let work = Array.make n 0.0 in
  let time = ref 0.0 in
  let k_max = rounds inst in
  let k = ref 1 in
  while Array.exists Fun.id remaining && !k <= k_max do
    let survivors =
      Array.of_list
        (List.filter (fun j -> remaining.(j)) (List.init n Fun.id))
    in
    let lengths =
      Array.init n (fun j ->
          Float.pow 2.0 (float_of_int (!k - 2)) /. Stoch_instance.rate inst j)
    in
    let { Ll_lp.x; value } = Ll_lp.solve inst ~lengths ~jobs:survivors in
    let slices = Bvn.decompose ~m ~n ~x ~horizon:value in
    time := !time +. execute_slices inst ~slices ~p ~work ~remaining;
    incr k
  done;
  (* Tail: survivors run one after another on their fastest machine. *)
  for j = 0 to n - 1 do
    if remaining.(j) then begin
      let i = Stoch_instance.fastest_machine inst j in
      time := !time +. ((p.(j) -. work.(j)) /. Stoch_instance.speed inst i j);
      remaining.(j) <- false
    end
  done;
  { makespan = !time; offline }

let runs inst ~seed ~reps =
  if reps <= 0 then invalid_arg "Stc_i.runs: reps must be positive";
  let master = Suu_prng.Rng.create ~seed in
  Array.init reps (fun _ ->
      let s = Int64.to_int (Suu_prng.Rng.bits64 master) in
      simulate inst ~seed:s)
