type t = {
  sname : string;
  rates : float array;
  speeds : float array array;
  fastest : int array;
}

let make ?(name = "stoch") ~rates speeds =
  let m = Array.length speeds in
  if m = 0 then invalid_arg "Stoch_instance.make: no machines";
  let n = Array.length rates in
  if n = 0 then invalid_arg "Stoch_instance.make: no jobs";
  Array.iter
    (fun row ->
      if Array.length row <> n then
        invalid_arg "Stoch_instance.make: ragged speed matrix";
      Array.iter
        (fun v ->
          if not (v >= 0.0) then
            invalid_arg "Stoch_instance.make: negative speed")
        row)
    speeds;
  Array.iter
    (fun l ->
      if not (l > 0.0) then
        invalid_arg "Stoch_instance.make: rates must be positive")
    rates;
  let fastest = Array.make n 0 in
  for j = 0 to n - 1 do
    let b = ref 0 in
    for i = 1 to m - 1 do
      if speeds.(i).(j) > speeds.(!b).(j) then b := i
    done;
    if speeds.(!b).(j) <= 0.0 then
      invalid_arg "Stoch_instance.make: job with no usable machine";
    fastest.(j) <- !b
  done;
  {
    sname = name;
    rates = Array.copy rates;
    speeds = Array.map Array.copy speeds;
    fastest;
  }

let name t = t.sname
let n t = Array.length t.rates
let m t = Array.length t.speeds
let rate t j = t.rates.(j)
let speed t i j = t.speeds.(i).(j)
let fastest_machine t j = t.fastest.(j)
