type schedule = {
  machine_of_job : int array;
  makespan : float;
  lp_bound : float;
}

(* Minimum fractional max-load when each job may only use machines with
   [p_ij <= limit]; [None] when some job has no allowed machine. *)
let assignment_lp ~m ~n ~p ~limit =
  let allowed j =
    List.filter (fun i -> p i j <= limit) (List.init m Fun.id)
  in
  let ok = ref true in
  for j = 0 to n - 1 do
    if allowed j = [] then ok := false
  done;
  if not !ok then None
  else begin
    let prob = Suu_lp.Problem.create ~name:"lst" () in
    let t = Suu_lp.Problem.add_var ~obj:1.0 prob in
    let xvar = Hashtbl.create (m * n) in
    for j = 0 to n - 1 do
      List.iter
        (fun i -> Hashtbl.add xvar (i, j) (Suu_lp.Problem.add_var prob))
        (allowed j)
    done;
    for j = 0 to n - 1 do
      let terms =
        List.map (fun i -> (Hashtbl.find xvar (i, j), 1.0)) (allowed j)
      in
      Suu_lp.Problem.add_constraint prob terms Suu_lp.Problem.Eq 1.0
    done;
    for i = 0 to m - 1 do
      let terms = ref [ (t, -1.0) ] in
      for j = 0 to n - 1 do
        match Hashtbl.find_opt xvar (i, j) with
        | Some v -> terms := (v, p i j) :: !terms
        | None -> ()
      done;
      Suu_lp.Problem.add_constraint prob !terms Suu_lp.Problem.Le 0.0
    done;
    let value, sol = Suu_lp.Simplex.solve_exn prob in
    let x = Array.make_matrix m n 0.0 in
    Hashtbl.iter (fun (i, j) v -> x.(i).(j) <- Float.max 0.0 sol.(v)) xvar;
    Some (value, x)
  end

(* Round a vertex solution: integral jobs keep their machine; fractional
   jobs are matched into machines (LST's pseudo-forest argument).  Any
   job the matching misses — possible only through numerical degeneracy —
   falls back to its largest fractional machine. *)
let round ~m ~n ~x =
  let machine_of_job = Array.make n (-1) in
  let fractional = ref [] in
  for j = 0 to n - 1 do
    let best = ref (-1) in
    for i = 0 to m - 1 do
      if x.(i).(j) > 0.999 then best := i
    done;
    if !best >= 0 then machine_of_job.(j) <- !best
    else fractional := j :: !fractional
  done;
  let fractional = Array.of_list (List.rev !fractional) in
  let k = Array.length fractional in
  if k > 0 then begin
    let adj idx =
      let j = fractional.(idx) in
      let acc = ref [] in
      for i = m - 1 downto 0 do
        if x.(i).(j) > 1e-9 then acc := i :: !acc
      done;
      !acc
    in
    let match_l, _ = Suu_flow.Matching.maximum ~left:k ~right:m ~adj in
    Array.iteri
      (fun idx i ->
        let j = fractional.(idx) in
        if i >= 0 then machine_of_job.(j) <- i
        else begin
          let best = ref 0 in
          for i' = 1 to m - 1 do
            if x.(i').(j) > x.(!best).(j) then best := i'
          done;
          machine_of_job.(j) <- !best
        end)
      match_l
  end;
  machine_of_job

let schedule ~m ~n ~p ~eps =
  if m <= 0 || n <= 0 then invalid_arg "Lst.schedule: empty instance";
  if eps <= 0.0 then invalid_arg "Lst.schedule: eps must be positive";
  (* Bounds for the binary search. *)
  let best j =
    let v = ref infinity in
    for i = 0 to m - 1 do
      if p i j < !v then v := p i j
    done;
    if not (Float.is_finite !v) then
      invalid_arg "Lst.schedule: job with no runnable machine";
    !v
  in
  let lo = ref 0.0 and hi = ref 0.0 in
  for j = 0 to n - 1 do
    let b = best j in
    if b > !lo then lo := b;
    hi := !hi +. b
  done;
  let lo = ref (Float.max !lo 1e-12) and hi = ref (Float.max !hi 1e-12) in
  (* Smallest T (within eps) with fractional max-load <= T. *)
  let witness = ref None in
  let record limit =
    match assignment_lp ~m ~n ~p ~limit with
    | Some (value, x) when value <= limit *. (1.0 +. 1e-9) ->
        witness := Some (limit, x);
        true
    | _ -> false
  in
  if not (record !hi) then
    invalid_arg "Lst.schedule: upper bound not feasible (internal)";
  while !hi > !lo *. (1.0 +. eps) do
    let mid = sqrt (!lo *. !hi) in
    if record mid then hi := mid else lo := mid
  done;
  let lp_bound, x =
    match !witness with Some w -> w | None -> assert false
  in
  let machine_of_job = round ~m ~n ~x in
  let load = Array.make m 0.0 in
  Array.iteri
    (fun j i -> load.(i) <- load.(i) +. p i j)
    machine_of_job;
  let makespan = Array.fold_left Float.max 0.0 load in
  { machine_of_job; makespan; lp_bound }
