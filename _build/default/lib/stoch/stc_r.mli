(** STC-R: the restart-model variant of STC-I (paper Appendix C).

    In [R|restart, p_j ~ stoch|E[Cmax]] a job must run to completion on a
    single machine, but an unfinished job may be {e restarted} (from
    scratch, with the same realized length) on a different machine.  The
    paper: "The only necessary change to the algorithm is to substitute
    the kth round with the corresponding solution to [R||Cmax], in lieu of
    [R|pmtn|Cmax]" — that substitution is {!Lst}.

    Round [k] LST-schedules the survivors with deterministic lengths
    [2^(k-2) / lambda_j]; each machine runs its assigned jobs back to
    back, spending [min(p_j, L_k) / v_ij] on job [j] (it stops at the
    job's completion, or gives up once [L_k] worth of work is done).
    Survivors of round [K] run sequentially on their fastest machines. *)

type run = {
  makespan : float;
  offline : float;
      (** the Lawler–Labetoulle optimum on the realized lengths — a valid
          lower bound, since preemptive schedules subsume restarts *)
}

val simulate : Stoch_instance.t -> seed:int -> run
(** One execution on freshly drawn exponential lengths. *)

val runs : Stoch_instance.t -> seed:int -> reps:int -> run array
(** Independent replications. *)
