(** Lenstra–Shmoys–Tardos 2-approximation for [R||Cmax]
    (the paper's reference [10]).

    Appendix C notes that substituting an [R||Cmax] schedule for the
    preemptive [R|pmtn|Cmax] one in each STC round handles the weaker
    {e restart} model, where a job must run to completion on a single
    machine but may be restarted elsewhere.  The classic LST scheme:
    binary-search the target makespan [T]; for each candidate, solve the
    assignment LP restricted to pairs with [p_ij <= T]; at a vertex
    solution the fractionally-assigned jobs form a pseudo-forest with the
    machines, so a matching places each of them whole on some machine,
    adding at most one job (hence at most [T]) per machine — a schedule of
    makespan at most [2T]. *)

type schedule = {
  machine_of_job : int array;  (** the machine each job runs on, whole *)
  makespan : float;  (** max machine load of the integral assignment *)
  lp_bound : float;
      (** the smallest LP-feasible target found; optimal makespan is
          >= this value (up to the search's [eps]) *)
}

val schedule :
  m:int -> n:int -> p:(int -> int -> float) -> eps:float -> schedule
(** [schedule ~m ~n ~p ~eps] assigns every job to one machine with
    makespan at most [2 (1 + eps)] times the optimum.  [p i j] is the
    full processing time of job [j] on machine [i] ([infinity] when the
    machine cannot run it; every job needs one finite entry).
    Raises [Invalid_argument] on empty input or an unrunnable job. *)
