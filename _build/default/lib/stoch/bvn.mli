(** Birkhoff–von-Neumann-style slice decomposition of a fractional
    timetable into an explicit preemptive schedule.

    Given machine-on-job times [x_ij] with every machine's total and every
    job's total at most a horizon [C], the matrix extends (with idle
    dummies) to a doubly stochastic one; Birkhoff's theorem peels it into
    matchings.  Each matching becomes a schedule {e slice}: for its
    duration, each machine works on at most one job and each job is worked
    by at most one machine.  Total slice duration is at most [C] (up to
    padding roundoff), realizing the Lawler–Labetoulle makespan. *)

type slice = {
  duration : float;
  assign : int array;  (** per machine: job index, or -1 for idle *)
}

val decompose :
  m:int -> n:int -> x:float array array -> horizon:float -> slice list
(** [decompose ~m ~n ~x ~horizon] peels the timetable into slices.
    Requires row sums and column sums at most [horizon] (within 1e-6
    relative tolerance; raises [Invalid_argument] otherwise).  The result
    satisfies: for every [(i, j)], the summed duration of slices assigning
    [j] to [i] equals [x.(i).(j)] up to 1e-6, and slice durations sum to
    at most [horizon * (1 + 1e-6)]. *)
