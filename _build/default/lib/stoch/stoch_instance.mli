(** Stochastic-scheduling instances (paper Appendix C).

    [R|pmtn, p_j ~ stoch|E[Cmax]]: job [j]'s length [p_j] is exponential
    with known rate [lambda_j] (revealed only on completion); machine [i]
    processes job [j] at speed [v_ij]; a job completes when
    [sum_i x_ij v_ij >= p_j] over the time [x_ij] spent on it.  Time is
    continuous, preemption is free, but no job may run on two machines at
    once. *)

type t

val make : ?name:string -> rates:float array -> float array array -> t
(** [make ~rates speeds] builds an instance from [lambda_j] ([rates])
    and the [m x n] speed matrix.  Raises [Invalid_argument] on
    non-positive rates, negative speeds, ragged input, or a job with no
    positive-speed machine. *)

val name : t -> string

val n : t -> int
(** Number of jobs. *)

val m : t -> int
(** Number of machines. *)

val rate : t -> int -> float
val speed : t -> int -> int -> float

val fastest_machine : t -> int -> int
(** Machine with the largest [v_ij] for job [j]. *)
