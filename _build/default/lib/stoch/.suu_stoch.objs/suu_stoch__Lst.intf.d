lib/stoch/lst.mli:
