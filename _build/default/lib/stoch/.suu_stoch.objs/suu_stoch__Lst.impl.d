lib/stoch/lst.ml: Array Float Fun Hashtbl List Suu_flow Suu_lp
