lib/stoch/stc_r.mli: Stoch_instance
