lib/stoch/bvn.ml: Array Float List Suu_flow
