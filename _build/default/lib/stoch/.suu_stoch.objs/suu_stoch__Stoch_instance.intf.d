lib/stoch/stoch_instance.mli:
