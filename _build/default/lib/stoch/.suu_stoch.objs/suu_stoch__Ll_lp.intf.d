lib/stoch/ll_lp.mli: Stoch_instance
