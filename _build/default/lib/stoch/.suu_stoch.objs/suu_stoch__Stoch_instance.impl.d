lib/stoch/stoch_instance.ml: Array
