lib/stoch/bvn.mli:
