lib/stoch/stc_r.ml: Array Float Fun Int64 List Ll_lp Lst Stc_i Stoch_instance Suu_prng
