lib/stoch/stc_i.mli: Stoch_instance
