lib/stoch/ll_lp.ml: Array Float Hashtbl Stoch_instance Suu_lp
