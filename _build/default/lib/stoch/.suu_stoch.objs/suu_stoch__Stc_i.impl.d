lib/stoch/stc_i.ml: Array Bvn Float Fun Int64 List Ll_lp Stoch_instance Suu_prng
