(** STC-I: the O(log log n)-approximation for stochastic scheduling on
    unrelated machines (paper Appendix C, Theorem 13).

    The schedule runs [K = ceil(log log n) + 3] rounds.  Round [k] solves
    the deterministic [R|pmtn|Cmax] instance with lengths
    [2^(k-2) / lambda_j] on the surviving jobs (via {!Ll_lp} and
    {!Bvn.decompose}) and executes the resulting preemptive schedule; any
    job whose realized exponential length is at most its round target
    completes.  Jobs remaining after round [K] run sequentially on their
    fastest machines.

    Also includes the continuous-time simulator for this setting and the
    per-trace offline bound [LL-LP(p)] — the optimal preemptive makespan
    had the lengths been known — used to measure approximation ratios. *)

type run = {
  makespan : float;
  offline : float;  (** LL-LP optimum on the realized lengths *)
}

val simulate : Stoch_instance.t -> seed:int -> run
(** [simulate inst ~seed] draws [p_j ~ Exp(lambda_j)] and executes one
    STC-I schedule.  Rounds stop early once all jobs are complete. *)

val runs : Stoch_instance.t -> seed:int -> reps:int -> run array
(** Independent replications (seeds derived from [seed]). *)

val rounds : Stoch_instance.t -> int
(** The round count [K]. *)
