type sol = { x : float array array; value : float }

let solve inst ~lengths ~jobs =
  if Array.length jobs = 0 then invalid_arg "Ll_lp.solve: no jobs";
  let m = Stoch_instance.m inst in
  let n = Stoch_instance.n inst in
  Array.iter
    (fun j ->
      if j < 0 || j >= n then invalid_arg "Ll_lp.solve: job out of range";
      if not (lengths.(j) > 0.0) then
        invalid_arg "Ll_lp.solve: lengths must be positive")
    jobs;
  let p = Suu_lp.Problem.create ~name:"ll" () in
  let c_var = Suu_lp.Problem.add_var ~obj:1.0 p in
  let xvar = Hashtbl.create (m * Array.length jobs) in
  Array.iter
    (fun j ->
      for i = 0 to m - 1 do
        if Stoch_instance.speed inst i j > 0.0 then
          Hashtbl.add xvar (i, j) (Suu_lp.Problem.add_var p)
      done)
    jobs;
  (* Coverage: enough work done on each job. *)
  Array.iter
    (fun j ->
      let terms = ref [] in
      for i = 0 to m - 1 do
        match Hashtbl.find_opt xvar (i, j) with
        | Some v -> terms := (v, Stoch_instance.speed inst i j) :: !terms
        | None -> ()
      done;
      Suu_lp.Problem.add_constraint p !terms Suu_lp.Problem.Ge lengths.(j))
    jobs;
  (* Machine loads. *)
  for i = 0 to m - 1 do
    let terms = ref [ (c_var, -1.0) ] in
    Array.iter
      (fun j ->
        match Hashtbl.find_opt xvar (i, j) with
        | Some v -> terms := (v, 1.0) :: !terms
        | None -> ())
      jobs;
    Suu_lp.Problem.add_constraint p !terms Suu_lp.Problem.Le 0.0
  done;
  (* No job on two machines at once: total time per job <= C. *)
  Array.iter
    (fun j ->
      let terms = ref [ (c_var, -1.0) ] in
      for i = 0 to m - 1 do
        match Hashtbl.find_opt xvar (i, j) with
        | Some v -> terms := (v, 1.0) :: !terms
        | None -> ()
      done;
      Suu_lp.Problem.add_constraint p !terms Suu_lp.Problem.Le 0.0)
    jobs;
  let value, sol = Suu_lp.Simplex.solve_exn p in
  let x = Array.make_matrix m n 0.0 in
  Hashtbl.iter (fun (i, j) v -> x.(i).(j) <- Float.max 0.0 sol.(v)) xvar;
  { x; value }
