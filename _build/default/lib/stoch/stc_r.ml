type run = { makespan : float; offline : float }

let simulate inst ~seed =
  let rng = Suu_prng.Rng.create ~seed in
  let n = Stoch_instance.n inst in
  let m = Stoch_instance.m inst in
  let p =
    Array.init n (fun j ->
        Suu_prng.Rng.exponential rng ~rate:(Stoch_instance.rate inst j))
  in
  let offline =
    let jobs = Array.init n Fun.id in
    (Ll_lp.solve inst ~lengths:p ~jobs).Ll_lp.value
  in
  let remaining = Array.make n true in
  let time = ref 0.0 in
  let k_max = Stc_i.rounds inst in
  let k = ref 1 in
  while Array.exists Fun.id remaining && !k <= k_max do
    let survivors =
      Array.of_list
        (List.filter (fun j -> remaining.(j)) (List.init n Fun.id))
    in
    let ns = Array.length survivors in
    let target j =
      Float.pow 2.0 (float_of_int (!k - 2)) /. Stoch_instance.rate inst j
    in
    (* Full processing times under the round's deterministic lengths. *)
    let proc i jj =
      let j = survivors.(jj) in
      let v = Stoch_instance.speed inst i j in
      if v <= 0.0 then infinity else target j /. v
    in
    let lst = Lst.schedule ~m ~n:ns ~p:proc ~eps:0.05 in
    (* Each machine runs its jobs back to back; a job occupies
       min(p_j, L_k) / v_ij time (it completes, or the round's budget for
       it runs out). *)
    let busy = Array.make m 0.0 in
    Array.iteri
      (fun jj i ->
        let j = survivors.(jj) in
        let v = Stoch_instance.speed inst i j in
        busy.(i) <- busy.(i) +. (Float.min p.(j) (target j) /. v);
        if p.(j) <= target j then remaining.(j) <- false)
      lst.Lst.machine_of_job;
    time := !time +. Array.fold_left Float.max 0.0 busy;
    incr k
  done;
  for j = 0 to n - 1 do
    if remaining.(j) then begin
      let i = Stoch_instance.fastest_machine inst j in
      time := !time +. (p.(j) /. Stoch_instance.speed inst i j);
      remaining.(j) <- false
    end
  done;
  { makespan = !time; offline }

let runs inst ~seed ~reps =
  if reps <= 0 then invalid_arg "Stc_r.runs: reps must be positive";
  let master = Suu_prng.Rng.create ~seed in
  Array.init reps (fun _ ->
      let s = Int64.to_int (Suu_prng.Rng.bits64 master) in
      simulate inst ~seed:s)
