lib/stats/fit.mli:
