(** Least-squares fits used to check asymptotic growth shapes.

    The paper's Table 1 claims ratios growing like [log n] for the
    previously-best algorithms versus [log log n] for this work's; the
    benchmark harness fits measured ratios against candidate growth
    functions and reports which fits best. *)

type line = { slope : float; intercept : float; r2 : float }
(** A fitted line [y = slope * x + intercept] with coefficient of
    determination [r2] (1 when n < 3 or the fit is exact). *)

val ols : xs:float array -> ys:float array -> line
(** [ols ~xs ~ys] is the ordinary-least-squares line.  Raises
    [Invalid_argument] when lengths differ or fewer than two points are
    given. *)

val fit_against : f:(float -> float) -> xs:float array -> ys:float array -> line
(** [fit_against ~f ~xs ~ys] fits [y = a * f(x) + b], returning the line in
    transformed coordinates; its [r2] measures how well growth [f]
    explains the data. *)

val log2 : float -> float
(** Base-2 logarithm. *)

val loglog2 : float -> float
(** [loglog2 x] is [log2 (max 2 (log2 x))], the doubly-logarithmic growth
    candidate (clamped to stay defined for small x). *)
