type line = { slope : float; intercept : float; r2 : float }

let ols ~xs ~ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Fit.ols: length mismatch";
  if n < 2 then invalid_arg "Fit.ols: need at least two points";
  let fn = float_of_int n in
  let sx = Array.fold_left ( +. ) 0.0 xs in
  let sy = Array.fold_left ( +. ) 0.0 ys in
  let mx = sx /. fn and my = sy /. fn in
  let sxx = ref 0.0 and sxy = ref 0.0 and syy = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  let slope = if !sxx = 0.0 then 0.0 else !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r2 =
    if !syy = 0.0 then 1.0
    else
      let ss_res = ref 0.0 in
      for i = 0 to n - 1 do
        let e = ys.(i) -. ((slope *. xs.(i)) +. intercept) in
        ss_res := !ss_res +. (e *. e)
      done;
      1.0 -. (!ss_res /. !syy)
  in
  { slope; intercept; r2 }

let fit_against ~f ~xs ~ys = ols ~xs:(Array.map f xs) ~ys

let log2 x = log x /. log 2.0

let loglog2 x = log2 (Float.max 2.0 (log2 x))
