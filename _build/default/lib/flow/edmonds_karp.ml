let max_flow net ~s ~t =
  let n = Net.num_nodes net in
  if s < 0 || s >= n || t < 0 || t >= n then
    invalid_arg "Edmonds_karp: node out of range";
  if s = t then invalid_arg "Edmonds_karp: source equals sink";
  let adj, dst, cap = Net.internal net in
  let parent_arc = Array.make n (-1) in
  let queue = Array.make n 0 in
  let bfs () =
    Array.fill parent_arc 0 n (-1);
    parent_arc.(s) <- -2;
    queue.(0) <- s;
    let head = ref 0 and tail = ref 1 in
    let found = ref false in
    while (not !found) && !head < !tail do
      let v = queue.(!head) in
      incr head;
      Array.iter
        (fun a ->
          let u = dst.(a) in
          if cap.(a) > 0 && parent_arc.(u) = -1 then begin
            parent_arc.(u) <- a;
            if u = t then found := true
            else begin
              queue.(!tail) <- u;
              incr tail
            end
          end)
        adj.(v)
    done;
    !found
  in
  let total = ref 0 in
  while bfs () do
    (* Bottleneck along the parent chain, then augment. *)
    let bottleneck = ref Net.infinite in
    let v = ref t in
    while parent_arc.(!v) >= 0 do
      let a = parent_arc.(!v) in
      if cap.(a) < !bottleneck then bottleneck := cap.(a);
      v := dst.(a lxor 1)
    done;
    let v = ref t in
    while parent_arc.(!v) >= 0 do
      let a = parent_arc.(!v) in
      cap.(a) <- cap.(a) - !bottleneck;
      cap.(a lxor 1) <- cap.(a lxor 1) + !bottleneck;
      v := dst.(a lxor 1)
    done;
    total := !total + !bottleneck
  done;
  !total
