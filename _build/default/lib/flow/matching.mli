(** Maximum bipartite matching (Kuhn's augmenting-path algorithm).

    Used by the Birkhoff–von-Neumann decomposition in [suu_stoch] to peel
    preemptive schedule slices out of a Lawler–Labetoulle LP solution: each
    slice is a matching between machines and jobs. *)

val maximum :
  left:int -> right:int -> adj:(int -> int list) -> int array * int array
(** [maximum ~left ~right ~adj] computes a maximum matching of the
    bipartite graph with [left] left nodes, [right] right nodes and
    neighbours [adj l] for each left node.  Returns
    [(match_of_left, match_of_right)] where unmatched nodes map to [-1]. *)

val is_perfect_on_left : int array -> bool
(** [is_perfect_on_left match_of_left] is true when every left node is
    matched. *)
