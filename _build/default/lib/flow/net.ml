type t = {
  n : int;
  mutable dst : int array;
  mutable cap : int array; (* residual capacity per arc *)
  mutable orig : int array; (* original capacity per arc *)
  mutable nedges : int;
  mutable out_lists : int list array; (* reversed adjacency, frozen lazily *)
  mutable adj : int array array option;
}

type edge = int

let infinite = max_int / 4

let create n =
  {
    n;
    dst = Array.make 16 0;
    cap = Array.make 16 0;
    orig = Array.make 16 0;
    nedges = 0;
    out_lists = Array.make (max n 1) [];
    adj = None;
  }

let num_nodes t = t.n

let grow t =
  let old = Array.length t.dst in
  let fresh_len = 2 * old in
  let extend a =
    let b = Array.make fresh_len 0 in
    Array.blit a 0 b 0 old;
    b
  in
  t.dst <- extend t.dst;
  t.cap <- extend t.cap;
  t.orig <- extend t.orig

let push_arc t ~src ~dst ~cap =
  if t.nedges >= Array.length t.dst then grow t;
  let a = t.nedges in
  t.nedges <- a + 1;
  t.dst.(a) <- dst;
  t.cap.(a) <- cap;
  t.orig.(a) <- cap;
  t.out_lists.(src) <- a :: t.out_lists.(src);
  a

let add_edge t ~src ~dst ~cap =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Net.add_edge: node out of range";
  if cap < 0 then invalid_arg "Net.add_edge: negative capacity";
  t.adj <- None;
  let fwd = push_arc t ~src ~dst ~cap in
  let (_ : int) = push_arc t ~src:dst ~dst:src ~cap:0 in
  fwd

let flow_on t e = t.orig.(e) - t.cap.(e)
let capacity t e = t.orig.(e)

let freeze t =
  match t.adj with
  | Some a -> a
  | None ->
      let a =
        Array.map (fun arcs -> Array.of_list (List.rev arcs)) t.out_lists
      in
      t.adj <- Some a;
      a

let residual t ~src k =
  let adj = freeze t in
  t.cap.(adj.(src).(k))

let copy t =
  {
    n = t.n;
    dst = Array.copy t.dst;
    cap = Array.copy t.cap;
    orig = Array.copy t.orig;
    nedges = t.nedges;
    out_lists = Array.copy t.out_lists;
    adj = None;
  }

let reset t = Array.blit t.orig 0 t.cap 0 t.nedges

let internal t =
  let adj = freeze t in
  (adj, t.dst, t.cap)
