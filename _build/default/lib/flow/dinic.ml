let check_endpoints net ~s ~t =
  let n = Net.num_nodes net in
  if s < 0 || s >= n || t < 0 || t >= n then
    invalid_arg "Dinic: node out of range";
  if s = t then invalid_arg "Dinic: source equals sink"

let max_flow net ~s ~t =
  check_endpoints net ~s ~t;
  let adj, dst, cap = Net.internal net in
  let n = Net.num_nodes net in
  let level = Array.make n (-1) in
  let iter = Array.make n 0 in
  let queue = Array.make n 0 in
  let bfs () =
    Array.fill level 0 n (-1);
    level.(s) <- 0;
    queue.(0) <- s;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let v = queue.(!head) in
      incr head;
      Array.iter
        (fun a ->
          let u = dst.(a) in
          if cap.(a) > 0 && level.(u) < 0 then begin
            level.(u) <- level.(v) + 1;
            queue.(!tail) <- u;
            incr tail
          end)
        adj.(v)
    done;
    level.(t) >= 0
  in
  (* Depth-first blocking flow with arc iterators. *)
  let rec dfs v pushed =
    if v = t then pushed
    else begin
      let arcs = adj.(v) in
      let result = ref 0 in
      while !result = 0 && iter.(v) < Array.length arcs do
        let a = arcs.(iter.(v)) in
        let u = dst.(a) in
        if cap.(a) > 0 && level.(u) = level.(v) + 1 then begin
          let got = dfs u (min pushed cap.(a)) in
          if got > 0 then begin
            cap.(a) <- cap.(a) - got;
            cap.(a lxor 1) <- cap.(a lxor 1) + got;
            result := got
          end
          else iter.(v) <- iter.(v) + 1
        end
        else iter.(v) <- iter.(v) + 1
      done;
      !result
    end
  in
  let total = ref 0 in
  while bfs () do
    Array.fill iter 0 n 0;
    let continue = ref true in
    while !continue do
      let pushed = dfs s Net.infinite in
      if pushed = 0 then continue := false else total := !total + pushed
    done
  done;
  !total

let min_cut net ~s =
  let adj, dst, cap = Net.internal net in
  let n = Net.num_nodes net in
  let seen = Array.make n false in
  let rec go v =
    if not seen.(v) then begin
      seen.(v) <- true;
      Array.iter (fun a -> if cap.(a) > 0 then go dst.(a)) adj.(v)
    end
  in
  go s;
  seen
