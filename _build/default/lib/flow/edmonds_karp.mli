(** Edmonds–Karp maximum flow (BFS augmenting paths).

    A second, independent implementation of Ford–Fulkerson used to
    cross-check {!Dinic} in tests, exactly because the paper's rounding
    correctness leans on Ford–Fulkerson's integrality theorem. *)

val max_flow : Net.t -> s:int -> t:int -> int
(** [max_flow net ~s ~t] computes a maximum flow, mutating [net] into its
    residual graph. *)
