lib/flow/dinic.mli: Net
