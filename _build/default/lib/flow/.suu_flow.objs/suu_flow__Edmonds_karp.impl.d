lib/flow/edmonds_karp.ml: Array Net
