lib/flow/matching.mli:
