lib/flow/edmonds_karp.mli: Net
