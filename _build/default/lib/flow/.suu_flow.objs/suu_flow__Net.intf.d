lib/flow/net.mli:
