lib/flow/net.ml: Array List
