lib/flow/dinic.ml: Array Net
