(** Capacitated directed networks with integral capacities.

    The rounding step of the paper's Lemma 2 (and Lemma 6) needs an
    *integral* maximum flow — Ford–Fulkerson's integrality theorem is what
    makes the rounded assignment integral.  This module stores a residual
    graph; {!Dinic.max_flow} and {!Edmonds_karp.max_flow} operate on it in
    place. *)

type t
(** A flow network over nodes [0 .. num_nodes - 1]. *)

type edge
(** Handle to a forward edge, for reading its flow after a computation. *)

val infinite : int
(** A capacity treated as unbounded ([max_int / 4], safe to sum). *)

val create : int -> t
(** [create n] is an empty network on [n] nodes. *)

val num_nodes : t -> int

val add_edge : t -> src:int -> dst:int -> cap:int -> edge
(** [add_edge t ~src ~dst ~cap] adds a directed edge with capacity
    [cap >= 0] and its zero-capacity reverse residual edge.  Raises
    [Invalid_argument] on bad nodes or negative capacity. *)

val flow_on : t -> edge -> int
(** [flow_on t e] is the flow currently routed through [e] (capacity
    consumed), valid after a max-flow computation. *)

val capacity : t -> edge -> int
(** [capacity t e] is the original capacity of [e]. *)

val residual : t -> src:int -> int -> int
(** [residual t ~src k] is the residual capacity of the [k]-th outgoing
    arc of [src] (forward and reverse arcs interleaved); used internally
    by the solvers and exposed for tests. *)

val copy : t -> t
(** Deep copy (for cross-checking two solvers on one instance). *)

val reset : t -> unit
(** [reset t] restores all capacities, erasing any computed flow. *)

(**/**)

(* Internal representation shared with the solver modules. *)
val internal :
  t -> int array array * int array * int array
(* [internal t] is [(adj, dst, residual_cap)]: [adj.(v)] lists arc ids out
   of [v]; arc [a] points to [dst.(a)] with remaining capacity
   [residual_cap.(a)]; arc [a lxor 1] is its reverse. *)
