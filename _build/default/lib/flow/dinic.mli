(** Dinic's maximum-flow algorithm.

    O(V^2 E) in general, O(E sqrt V) on the unit-ish bipartite networks the
    Lemma-2 rounding builds.  Returns an integral flow, as required by the
    Ford–Fulkerson integrality argument the paper invokes. *)

val max_flow : Net.t -> s:int -> t:int -> int
(** [max_flow net ~s ~t] computes a maximum [s]–[t] flow, mutating [net]
    into its residual graph, and returns the flow value.  Raises
    [Invalid_argument] when [s = t] or either node is out of range. *)

val min_cut : Net.t -> s:int -> bool array
(** [min_cut net ~s] — to be called after {!max_flow} — marks the source
    side of a minimum cut (nodes reachable from [s] in the residual
    graph). *)
