let maximum ~left ~right ~adj =
  if left < 0 || right < 0 then invalid_arg "Matching.maximum: negative size";
  let match_l = Array.make left (-1) in
  let match_r = Array.make right (-1) in
  let visited = Array.make right false in
  let rec try_augment l =
    List.exists
      (fun r ->
        if r < 0 || r >= right then
          invalid_arg "Matching.maximum: neighbour out of range";
        if visited.(r) then false
        else begin
          visited.(r) <- true;
          if match_r.(r) < 0 || try_augment match_r.(r) then begin
            match_l.(l) <- r;
            match_r.(r) <- l;
            true
          end
          else false
        end)
      (adj l)
  in
  for l = 0 to left - 1 do
    Array.fill visited 0 right false;
    let (_ : bool) = try_augment l in
    ()
  done;
  (match_l, match_r)

let is_perfect_on_left match_of_left =
  Array.for_all (fun r -> r >= 0) match_of_left
